"""Stdlib HTTP client for the repro job service.

:class:`Client` is the supported way to talk to ``repro serve`` from
Python (tests use it exclusively): submit a spec, poll status, stream
server-sent events, fetch the RunReport.  It is deliberately boring --
``http.client`` underneath, one connection per call (the server closes
connections after each response anyway), and every non-2xx response is
raised as a typed :class:`~repro.service.errors.ServiceError` built from
the ``repro.service_error/1`` payload.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Iterator
from urllib.parse import urlsplit

from repro.service.errors import ServiceError
from repro.specs import ExperimentSpec

__all__ = ["Client"]


class Client:
    """Talks to one repro service instance at ``base_url``."""

    def __init__(self, base_url: str, client_id: str = "anonymous", timeout: float = 60.0):
        split = urlsplit(base_url)
        if not split.netloc:  # tolerate "host:port" / "[::1]:port" sans scheme
            split = urlsplit("//" + base_url)
        if split.scheme not in ("", "http"):
            raise ValueError(f"unsupported scheme {split.scheme!r} (http only)")
        if not split.hostname:
            raise ValueError(f"no host in {base_url!r}")
        self.host = split.hostname  # brackets stripped from IPv6 literals
        self.port = split.port or 80
        self.client_id = client_id
        self.timeout = timeout

    # -- plumbing -------------------------------------------------------
    def _connect(self, timeout: float | None = None) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout if timeout is None else timeout
        )

    def _request(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
        headers: dict[str, str] | None = None,
    ) -> dict[str, Any]:
        conn = self._connect()
        try:
            payload = None
            send_headers = {"X-Repro-Client": self.client_id}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                send_headers["Content-Type"] = "application/json"
            if headers:
                send_headers.update(headers)
            conn.request(method, path, body=payload, headers=send_headers)
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(
                "internal",
                f"non-JSON response (HTTP {response.status}): {raw[:200]!r}",
                status=response.status,
            ) from exc
        if response.status >= 400:
            try:
                raise ServiceError.from_payload(data)
            except ValueError as exc:
                raise ServiceError(
                    "internal",
                    f"untyped error response (HTTP {response.status}): {data!r}",
                    status=response.status,
                ) from exc
        return data

    # -- API ------------------------------------------------------------
    def submit(self, spec: "ExperimentSpec | dict[str, Any]") -> dict[str, Any]:
        """POST a spec; returns the initial status payload (with ``id``)."""
        body = spec.to_dict() if isinstance(spec, ExperimentSpec) else spec
        return self._request("POST", "/v1/experiments", body=body)

    def status(self, exp_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/experiments/{exp_id}")

    def result(self, exp_id: str) -> dict[str, Any]:
        """The schema-validated RunReport for a finished experiment."""
        return self._request("GET", f"/v1/experiments/{exp_id}/result")

    def stats(self) -> dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def healthz(self) -> dict[str, Any]:
        return self._request("GET", "/v1/healthz")

    def readyz(self) -> dict[str, Any]:
        """The readiness payload, whatever the HTTP status.

        Unlike every other endpoint a 503 here is not an error to raise
        -- it *is* the answer (``{"status": "recovering" | "draining",
        ...}``), so the body is returned for any status.
        """
        conn = self._connect()
        try:
            conn.request(
                "GET", "/v1/readyz", headers={"X-Repro-Client": self.client_id}
            )
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(
                "internal",
                f"non-JSON readyz response (HTTP {response.status}): {raw[:200]!r}",
                status=response.status,
            ) from exc

    def wait_ready(self, timeout: float = 30.0, poll: float = 0.1) -> dict[str, Any]:
        """Poll ``/v1/readyz`` until the server reports ready."""
        deadline = time.monotonic() + timeout
        last: dict[str, Any] | None = None
        while time.monotonic() < deadline:
            try:
                last = self.readyz()
                if last.get("status") == "ready":
                    return last
            except (ServiceError, OSError):
                pass
            time.sleep(poll)
        raise TimeoutError(f"service not ready after {timeout}s (last: {last})")

    def wait(self, exp_id: str, timeout: float = 120.0, poll: float = 0.05) -> dict[str, Any]:
        """Poll status until the experiment is terminal; returns final status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(exp_id)
            if status["status"] in ("done", "error"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"experiment {exp_id} still {status['status']!r} after {timeout}s"
                )
            time.sleep(poll)

    def events(
        self,
        exp_id: str,
        after: int = 0,
        timeout: float = 120.0,
    ) -> Iterator[dict[str, Any]]:
        """Stream SSE events as dicts ``{"id", "event", "data"}``.

        ``after`` resumes past an already-seen event id (sent as
        ``Last-Event-ID``, exercising the server's replay path).  The
        stream ends when the server closes it (experiment terminal).
        """
        conn = self._connect(timeout=timeout)
        try:
            conn.request(
                "GET",
                f"/v1/experiments/{exp_id}/events",
                headers={
                    "X-Repro-Client": self.client_id,
                    "Last-Event-ID": str(after),
                    "Accept": "text/event-stream",
                },
            )
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    raise ServiceError.from_payload(json.loads(raw.decode("utf-8")))
                except (ValueError, json.JSONDecodeError) as exc:
                    raise ServiceError(
                        "internal",
                        f"untyped error response (HTTP {response.status})",
                        status=response.status,
                    ) from exc
            event: dict[str, Any] = {}
            for raw_line in response:
                line = raw_line.decode("utf-8").rstrip("\r\n")
                if not line:
                    if "data" in event:
                        yield event
                    event = {}
                    continue
                if line.startswith(":"):
                    continue  # keep-alive comment
                name, _, value = line.partition(":")
                value = value.removeprefix(" ")
                if name == "id":
                    event["id"] = int(value)
                elif name == "event":
                    event["event"] = value
                elif name == "data":
                    event["data"] = json.loads(value)
            if "data" in event:
                yield event
        finally:
            conn.close()

    def run(
        self, spec: "ExperimentSpec | dict[str, Any]", timeout: float = 120.0
    ) -> dict[str, Any]:
        """Submit, wait for completion, and return the RunReport."""
        submitted = self.submit(spec)
        status = self.wait(submitted["id"], timeout=timeout)
        if status["status"] == "error":
            raise ServiceError(
                "internal",
                f"experiment {submitted['id']} failed server-side",
                detail={"status": status},
            )
        return self.result(submitted["id"])
