"""The ``repro`` console command.

A thin front door over the experiment runner plus spec-file tooling::

    repro figure14 --workers 8          # == python -m repro.experiments ...
    repro --spec specs/custom_sweep.json
    repro specs list                    # registered components + presets
    repro specs show figure14           # an experiment's spec as JSON
    repro specs validate specs/*.json   # schema-check spec files
    repro specs status specs/*.json     # checkpoint progress per sweep
    repro serve --port 8035 --workers 4 # the async job API (repro.service)
    repro worker 127.0.0.1:7070         # serve a distributed sweep (repro.distwork)

``python -m repro`` forwards here, so all three spellings are
equivalent.  Everything that is not a ``specs``, ``serve`` or ``worker``
subcommand is handed to :func:`repro.experiments.runner.main` unchanged.
"""

from __future__ import annotations

import argparse
import sys

from repro.specs import (
    PREDICTORS,
    PRESETS,
    SCHEDULERS,
    STEERING,
    SpecError,
    load_spec,
    policy_names,
    spec_hash,
)

__all__ = ["main"]


def _specs_list() -> int:
    from repro.experiments import SPECS

    print("policy presets:", ", ".join(policy_names()))
    extras = sorted(set(PRESETS) - set(policy_names()))
    if extras:
        print("extra presets:", ", ".join(extras))
    print("steering kinds:", ", ".join(STEERING.names()))
    print("scheduler kinds:", ", ".join(SCHEDULERS.names()))
    print("predictor kinds:", ", ".join(PREDICTORS.names()))
    print("experiment specs:", ", ".join(SPECS))
    return 0


def _machine_table(spec) -> list[str]:
    """Per-cluster resource tables for every distinct machine in ``spec``.

    Rendered as ``#``-prefixed comment lines (the caller sends them to
    stderr) so ``repro specs show NAME > specs/NAME.json`` still writes
    pure JSON to stdout.
    """
    lines: list[str] = []
    seen = set()
    for sweep in spec.sweeps:
        for machine in sweep.machines:
            if machine in seen:
                continue
            seen.add(machine)
            config = machine.build()
            lines.append(
                f"# machine {config.name} (fwd {config.forwarding_latency}, "
                f"rob {config.rob_size})"
            )
            lines.append(
                "#   cluster  width  int  fp  mem  window  latency-overrides"
            )
            for index, cluster in enumerate(config.clusters):
                overrides = (
                    ",".join(
                        f"{op}={cycles}" for op, cycles in cluster.latency_overrides
                    )
                    or "-"
                )
                lines.append(
                    f"#   {index:<7}  {cluster.issue_width:<5}  "
                    f"{cluster.int_ports:<3}  {cluster.fp_ports:<2}  "
                    f"{cluster.mem_ports:<3}  {cluster.window_size:<6}  "
                    f"{overrides}"
                )
    return lines


def _specs_show(name: str) -> int:
    from repro.experiments import SPECS

    builder = SPECS.get(name)
    if builder is not None:
        spec = SPECS[name]()
        print(spec.to_json(), end="")
        for line in _machine_table(spec):
            print(line, file=sys.stderr)
        return 0
    preset = PRESETS.get(name)
    if preset is not None:
        import json

        print(json.dumps(preset.to_dict(), indent=2))
        print(f"# canonical hash: {spec_hash(preset)}", file=sys.stderr)
        return 0
    print(
        f"unknown spec {name!r}; experiments: {', '.join(SPECS)}; "
        f"presets: {', '.join(sorted(PRESETS))}",
        file=sys.stderr,
    )
    return 2


def _specs_validate(paths: list[str]) -> int:
    status = 0
    for path in paths:
        try:
            spec = load_spec(path)
        except SpecError as exc:
            print(f"FAIL {path}: {exc}")
            status = 1
            continue
        print(
            f"ok   {path}: {spec.name!r} "
            f"({len(spec.sweeps)} sweep{'s' if len(spec.sweeps) != 1 else ''}, "
            f"hash {spec_hash(spec)[:12]})"
        )
    return status


def _specs_status(paths: list[str], cache_dir: str | None) -> int:
    """Report each spec's sweep-manifest progress (checkpoint/resume state)."""
    import pathlib

    from repro.experiments.cache import default_cache_dir
    from repro.experiments.manifest import SweepManifest, default_manifest_dir

    directory = default_manifest_dir(
        pathlib.Path(cache_dir) if cache_dir else default_cache_dir()
    )
    status = 0
    for path in paths:
        try:
            spec = load_spec(path)
        except SpecError as exc:
            print(f"FAIL {path}: {exc}")
            status = 1
            continue
        digest = spec_hash(spec)
        manifest_path = directory / f"{digest}.json"
        if not manifest_path.exists():
            print(f"--   {path}: {spec.name!r} has no sweep manifest (never run, "
                  "fully cached on first pass, or run with --no-resume)")
            continue
        manifest = SweepManifest.open(directory, digest, spec.name)
        summary = manifest.summary()
        line = (
            f"ok   {path}: {spec.name!r} recorded {summary['jobs']} job(s): "
            f"{summary['completed']} completed, {summary['failed']} failed"
        )
        failures = [
            (key, entry)
            for key, entry in manifest.entries.items()
            if entry.get("status") == "failed"
        ]
        print(line)
        for key, entry in failures:
            failure = entry.get("failure") or {}
            print(
                f"     failed {entry.get('kernel')}/{entry.get('config')}: "
                f"{failure.get('kind', '?')} after "
                f"{entry.get('attempts', '?')} attempt(s) [{key[:12]}]"
            )
    return status


def _specs_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro specs",
        description="Inspect and validate experiment/policy specs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="registered component kinds, presets and specs")
    show = sub.add_parser("show", help="print a spec (experiment or preset) as JSON")
    show.add_argument("name")
    validate = sub.add_parser("validate", help="schema-check spec JSON files")
    validate.add_argument("paths", nargs="+", metavar="FILE")
    status = sub.add_parser(
        "status",
        help="show sweep-manifest progress (completed/failed jobs) per spec",
    )
    status.add_argument("paths", nargs="+", metavar="FILE")
    status.add_argument(
        "--cache-dir",
        default=None,
        help="cache root whose manifests to read (default: the runner's)",
    )
    args = parser.parse_args(argv)
    if args.command == "list":
        return _specs_list()
    if args.command == "show":
        return _specs_show(args.name)
    if args.command == "status":
        return _specs_status(args.paths, args.cache_dir)
    return _specs_validate(args.paths)


def _serve_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Run the simulation job service: POST experiment specs to "
            "/v1/experiments, stream progress over SSE, fetch run reports. "
            "See docs/API.md ('repro.service')."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8035, help="TCP port (0 = ephemeral)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="simulation worker processes (0/1 = in-process serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persistent run-cache root (default: the runner's cache dir)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent cache (dedupe still works in-memory)",
    )
    parser.add_argument(
        "--instructions",
        type=int,
        default=None,
        help="default per-run instruction count for specs that do not set one",
    )
    parser.add_argument("--seed", type=int, default=0, help="default workload seed")
    parser.add_argument(
        "--quota",
        type=float,
        default=None,
        help="per-client token-bucket capacity, in jobs (default: unmetered)",
    )
    parser.add_argument(
        "--quota-refill",
        type=float,
        default=0.0,
        help="tokens refilled per second per client (needs --quota)",
    )
    from repro.experiments.executor import executor_names

    parser.add_argument(
        "--executor",
        choices=executor_names(),
        default="local",
        help="execution backend for simulation jobs (default: local)",
    )
    parser.add_argument(
        "--workers-endpoint",
        default=None,
        help=(
            "where 'repro worker' processes rendezvous (host:port or a "
            "shared spool directory; required with --executor distributed)"
        ),
    )
    parser.add_argument(
        "--no-durable",
        action="store_true",
        help=(
            "disable the crash-safe experiment store (<cache>/service/); "
            "submissions then live only in process memory"
        ),
    )
    parser.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        help="shed submissions (503 overloaded) past this many in-flight "
        "experiments (default: unbounded)",
    )
    parser.add_argument(
        "--max-client-inflight",
        type=int,
        default=None,
        help="per-client cap on in-flight experiments (default: unbounded)",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        help="consecutive distributed-executor failures before the circuit "
        "breaker opens (default: 3)",
    )
    parser.add_argument(
        "--breaker-cooldown",
        type=float,
        default=30.0,
        help="seconds an open circuit waits before a half-open probe "
        "(default: 30)",
    )
    parser.add_argument(
        "--breaker-fallback",
        choices=("local", "hold"),
        default="local",
        help="what an open circuit does with jobs: run on the local pool, "
        "or hold until the backend recovers (default: local)",
    )
    args = parser.parse_args(argv)
    if args.executor == "distributed" and not args.workers_endpoint:
        print(
            "repro serve: --executor distributed needs --workers-endpoint "
            "(host:port or a shared spool directory)",
            file=sys.stderr,
        )
        return 2
    from repro.experiments.harness import DEFAULT_INSTRUCTIONS
    from repro.service import serve

    return serve(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        instructions=(
            args.instructions if args.instructions is not None else DEFAULT_INSTRUCTIONS
        ),
        seed=args.seed,
        quota=args.quota,
        quota_refill=args.quota_refill,
        executor=args.executor,
        workers_endpoint=args.workers_endpoint,
        durable=not args.no_durable,
        max_queue_depth=args.max_queue_depth,
        max_client_inflight=args.max_client_inflight,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        breaker_fallback=args.breaker_fallback,
    )


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "specs":
        return _specs_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "worker":
        from repro.distwork.worker import main as worker_main

        return worker_main(argv[1:])
    from repro.experiments.runner import main as runner_main

    return runner_main(argv)


if __name__ == "__main__":
    raise SystemExit(main())
