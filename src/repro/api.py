"""The stable public API of the reproduction.

Import everything from here::

    from repro.api import Workbench, run, figure

``repro.api`` is the one semver-governed surface of the package: every
name in :data:`__all__` keeps its signature and semantics within a major
version (see ``docs/API.md``).  Deep imports
(``repro.experiments.harness`` and friends) continue to work but are
implementation detail -- they may move between minor versions, and the
legacy re-exports on the :mod:`repro.experiments` package now emit
:class:`DeprecationWarning`.

The surface covers everything needed to reproduce the paper end to end
without a single deep import:

* **specs & registries** -- the declarative layer
  (:class:`MachineSpec`, :class:`PolicySpec`, :class:`ExperimentSpec`,
  :func:`load_spec`, :func:`run_spec`, :func:`spec_hash`) and the
  component registries out-of-tree policies plug into
  (:func:`register_steering`, :func:`register_scheduler`,
  :func:`register_predictor`);
* **workbench & execution** -- :class:`Workbench`,
  :class:`ParallelWorkbench`, :class:`RunCache`, :class:`RunJob`,
  :func:`execute_job`, :func:`execute_jobs`, :func:`job_key`,
  :func:`prepare_workload`, :func:`build_policy`, :func:`run_seeded`,
  :func:`average_figures`;
* **fault tolerance & checkpointing** -- :class:`ExecutionPolicy` (retry
  / timeout / fail-fast knobs), :class:`JobOutcome` and
  :class:`RunFailure` (failures as values), :func:`execute_outcomes`,
  :func:`run_job_outcome`, :class:`SweepManifest` (sweep
  checkpoint/resume) and :class:`SimulationDiverged`;
* **execution backends** -- the :class:`Executor` protocol and its two
  implementations, :class:`LocalPoolExecutor` (the in-process pool) and
  :class:`DistributedExecutor` (sharding over ``repro worker``
  processes), plus :func:`executor_names` / :func:`make_executor`;
* **figures** -- :data:`EXPERIMENTS`, :data:`PLANS`, :func:`figure`,
  :func:`list_figures`, plus every ``run_*`` / ``plan_*`` pair;
* **machines & policies** -- config constructors, both simulators, all
  steering and scheduling policies;
* **criticality & analysis** -- the critical-path model, slack, LoC,
  CPI breakdown, event classification, pipeline views;
* **workloads & VM** -- the kernel suite, trace patterns, assembler and
  interpreter (:func:`interpret` -- renamed from ``vm.interpreter.run``
  to leave :func:`run` for the single-simulation helper);
* **telemetry** -- :class:`Recorder`, :class:`Tracer`,
  :class:`RunReport` and the payload/serialization types
  (:mod:`repro.telemetry`);
* **service** -- the ``repro serve`` job API: :func:`serve`,
  :class:`ReproServer`, :class:`BackgroundServer`, the HTTP
  :class:`Client` and the typed :class:`ServiceError`
  (:mod:`repro.service`).

Convenience entry points defined here (not re-exports): :func:`run` (one
simulation from names), :func:`sweep` (the cartesian product of kernels,
configs and policies), :func:`figure` (a registry lookup that builds the
workbench for you) and :func:`list_figures`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro import __version__
from repro.analysis.breakdown import cpi_breakdown
from repro.analysis.consumers import exact_loc_by_pc
from repro.analysis.events import classify_lost_cycle_events
from repro.analysis.pipeview import contention_hotspots, render_pipeline
from repro.core.config import (
    ClusterConfig,
    MachineConfig,
    clustered_machine,
    monolithic_machine,
)
from repro.core.instruction import (
    CommitReason,
    DispatchReason,
    InFlight,
    SteerCause,
)
from repro.core.reference import ReferenceSimulator
from repro.core.rename import Dependences, extract_dependences
from repro.core.results import IlpProfile, SimulationResult
from repro.core.scheduling.policies import (
    CriticalFirstScheduler,
    LocScheduler,
    OldestFirstScheduler,
    SchedulingPolicy,
)
from repro.core.serialize import (
    config_from_dict,
    config_to_dict,
    result_from_dict,
    result_to_dict,
    results_identical,
)
from repro.core.simulator import ClusteredSimulator
from repro.core.steering.base import SteeringDecision, SteeringPolicy
from repro.core.steering.dependence import (
    CriticalitySteering,
    CriticalitySteeringConfig,
    DependenceSteering,
)
from repro.core.steering.simple import LoadBalanceSteering, ModuloSteering
from repro.criticality.critical_path import analyze_critical_path, critical_flags
from repro.criticality.loc import LocPredictor, PredictorSuite
from repro.criticality.slack import compute_global_slack, slack_histogram
from repro.core.simulator import SimulationDiverged
from repro.experiments import EXPERIMENTS, PLANS, SPECS, FigureData
from repro.experiments.aggregate import average_figures, run_seeded
from repro.experiments.cache import RunCache, default_cache_dir, job_key
from repro.experiments.distributed import DistributedExecutor
from repro.experiments.executor import (
    BreakerExecutor,
    CircuitBreaker,
    Executor,
    LocalPoolExecutor,
    executor_names,
    make_executor,
)
from repro.experiments.harness import (
    DEFAULT_INSTRUCTIONS,
    POLICY_NAMES,
    ParallelWorkbench,
    Workbench,
    build_policy,
)
from repro.experiments.manifest import SweepManifest, default_manifest_dir
from repro.experiments.outcomes import (
    ExecutionInterrupted,
    ExecutionPolicy,
    ExecutorUnavailable,
    GarbageResult,
    JobOutcome,
    OutcomeStats,
    RunFailure,
    RunFailureError,
)
from repro.experiments.parallel import (
    PreparedWorkload,
    RunJob,
    execute_job,
    execute_jobs,
    execute_outcomes,
    prepare_workload,
    run_job_outcome,
)
from repro.experiments.sweep import run_spec
from repro.service import (
    AdmissionController,
    BackgroundServer,
    Client,
    DurableStore,
    QuotaManager,
    ReproServer,
    SERVICE_ERROR_SCHEMA,
    STORE_SCHEMA,
    ServiceError,
    TokenBucket,
    default_store_dir,
    serve,
)
from repro.specs import (
    PRESETS,
    ExperimentSpec,
    MachineSpec,
    PolicySpec,
    PredictorSpec,
    SchedulerSpec,
    SpecError,
    SteeringSpec,
    SweepSpec,
    WorkloadSpec,
    canonical_policy,
    load_spec,
    policy_label,
    policy_names,
    register_predictor,
    register_scheduler,
    register_steering,
    resolve_policy,
    spec_hash,
)
from repro.frontend.branch_predictor import (
    GshareBranchPredictor,
    annotate_mispredictions,
)
from repro.telemetry import (
    DEFAULT_INTERVAL,
    REPORT_SCHEMA,
    NullTelemetry,
    Recorder,
    RunReport,
    Span,
    Telemetry,
    TelemetryData,
    Tracer,
    telemetry_from_dict,
    telemetry_to_dict,
    validate_report,
)
from repro.util.rng import seeded_rng
from repro.util.tables import format_histogram, format_table
from repro.vm.assembler import assemble
from repro.vm.interpreter import run as interpret
from repro.workloads.patterns import (
    convergent_pairs,
    divergent_tree,
    load_chain,
    mixed_criticality,
    parallel_chains,
    serial_chain,
)
from repro.workloads.suite import SUITE, get_kernel, suite_names

# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------


def run(
    kernel: str,
    config: MachineConfig | None = None,
    policy: str = "l",
    instructions: int = DEFAULT_INSTRUCTIONS,
    seed: int = 0,
    metrics: bool = False,
    **job_kwargs,
) -> SimulationResult:
    """One simulation from plain names: the shortest path to a result.

    ``config`` defaults to the paper's 4-cluster machine; any remaining
    :class:`RunJob` field (``warm``, ``sim``, ``collect_ilp``,
    ``loc_mode``) can be overridden through ``job_kwargs``.
    """
    job = RunJob(
        kernel=kernel,
        instructions=instructions,
        seed=seed,
        loc_mode=job_kwargs.pop("loc_mode", "probabilistic"),
        config=config if config is not None else clustered_machine(4),
        policy=policy,
        metrics=metrics,
        **job_kwargs,
    )
    return execute_job(job)


def sweep(
    kernels: Iterable[str],
    configs: Sequence[MachineConfig],
    policies: Sequence[str] = ("l",),
    instructions: int = DEFAULT_INSTRUCTIONS,
    seed: int = 0,
    workers: int = 0,
    cache: RunCache | None = None,
    metrics: bool = False,
) -> dict[tuple[str, str, str], SimulationResult]:
    """The cartesian product of kernels x configs x policies, as a dict.

    Keys are ``(kernel, config.name, policy)``; values come back through
    the same workbench caching layer the figures use, so repeated sweeps
    hit the cache.
    """
    bench = Workbench(
        instructions=instructions,
        seed=seed,
        workers=workers,
        cache=cache,
        metrics=metrics,
    )
    jobs = [
        bench.job(get_kernel(kernel), config, policy)
        for kernel in kernels
        for config in configs
        for policy in policies
    ]
    bench.prefetch(jobs)
    results = {}
    for kernel in kernels:
        spec = get_kernel(kernel)
        for config in configs:
            for policy in policies:
                results[(spec.name, config.name, policy)] = bench.run(
                    spec, config, policy
                )
    return results


def list_figures() -> list[str]:
    """Registry names accepted by :func:`figure` and the CLI."""
    return list(EXPERIMENTS)


def figure(
    name: str,
    bench: Workbench | None = None,
    **workbench_kwargs,
) -> FigureData:
    """Reproduce one registered figure or in-text claim by name.

    Pass an existing :class:`Workbench` to share its caches, or keyword
    arguments (``instructions``, ``workers``, ``cache``, ...) to build a
    fresh one.
    """
    try:
        experiment = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown figure {name!r}; known: {', '.join(EXPERIMENTS)}"
        ) from None
    if bench is None:
        bench = Workbench(**workbench_kwargs)
    elif workbench_kwargs:
        raise ValueError("pass either a Workbench or workbench kwargs, not both")
    return experiment(bench)


__all__ = [
    # convenience
    "figure",
    "interpret",
    "list_figures",
    "run",
    "sweep",
    # version
    "__version__",
    # workbench & execution
    "DEFAULT_INSTRUCTIONS",
    "BreakerExecutor",
    "CircuitBreaker",
    "DistributedExecutor",
    "Executor",
    "ExecutorUnavailable",
    "LocalPoolExecutor",
    "POLICY_NAMES",
    "ParallelWorkbench",
    "PreparedWorkload",
    "RunCache",
    "RunJob",
    "Workbench",
    "average_figures",
    "build_policy",
    "default_cache_dir",
    "execute_job",
    "execute_jobs",
    "execute_outcomes",
    "executor_names",
    "job_key",
    "make_executor",
    "prepare_workload",
    "run_job_outcome",
    "run_seeded",
    # fault tolerance & checkpointing
    "ExecutionInterrupted",
    "ExecutionPolicy",
    "GarbageResult",
    "JobOutcome",
    "OutcomeStats",
    "RunFailure",
    "RunFailureError",
    "SimulationDiverged",
    "SweepManifest",
    "default_manifest_dir",
    # service (repro serve)
    "AdmissionController",
    "BackgroundServer",
    "Client",
    "DurableStore",
    "QuotaManager",
    "ReproServer",
    "SERVICE_ERROR_SCHEMA",
    "STORE_SCHEMA",
    "ServiceError",
    "TokenBucket",
    "default_store_dir",
    "serve",
    # figures
    "EXPERIMENTS",
    "FigureData",
    "PLANS",
    "SPECS",
    # specs & registries
    "ExperimentSpec",
    "MachineSpec",
    "PRESETS",
    "PolicySpec",
    "PredictorSpec",
    "SchedulerSpec",
    "SpecError",
    "SteeringSpec",
    "SweepSpec",
    "WorkloadSpec",
    "canonical_policy",
    "load_spec",
    "policy_label",
    "policy_names",
    "register_predictor",
    "register_scheduler",
    "register_steering",
    "resolve_policy",
    "run_spec",
    "spec_hash",
    # machines
    "ClusterConfig",
    "MachineConfig",
    "clustered_machine",
    "monolithic_machine",
    # simulators & results
    "ClusteredSimulator",
    "CommitReason",
    "Dependences",
    "DispatchReason",
    "IlpProfile",
    "InFlight",
    "ReferenceSimulator",
    "SimulationResult",
    "SteerCause",
    "config_from_dict",
    "config_to_dict",
    "extract_dependences",
    "result_from_dict",
    "result_to_dict",
    "results_identical",
    # steering & scheduling
    "CriticalFirstScheduler",
    "CriticalitySteering",
    "CriticalitySteeringConfig",
    "DependenceSteering",
    "LoadBalanceSteering",
    "LocScheduler",
    "ModuloSteering",
    "OldestFirstScheduler",
    "SchedulingPolicy",
    "SteeringDecision",
    "SteeringPolicy",
    # criticality & analysis
    "LocPredictor",
    "PredictorSuite",
    "analyze_critical_path",
    "classify_lost_cycle_events",
    "compute_global_slack",
    "contention_hotspots",
    "cpi_breakdown",
    "critical_flags",
    "exact_loc_by_pc",
    "render_pipeline",
    "slack_histogram",
    # workloads & VM
    "SUITE",
    "assemble",
    "convergent_pairs",
    "divergent_tree",
    "get_kernel",
    "load_chain",
    "mixed_criticality",
    "parallel_chains",
    "seeded_rng",
    "serial_chain",
    "suite_names",
    # frontend
    "GshareBranchPredictor",
    "annotate_mispredictions",
    # telemetry
    "DEFAULT_INTERVAL",
    "NullTelemetry",
    "REPORT_SCHEMA",
    "Recorder",
    "RunReport",
    "Span",
    "Telemetry",
    "TelemetryData",
    "Tracer",
    "telemetry_from_dict",
    "telemetry_to_dict",
    "validate_report",
    # formatting
    "format_histogram",
    "format_table",
]
