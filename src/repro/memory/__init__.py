"""Data-memory hierarchy timing models."""

from repro.memory.cache import (
    CacheConfig,
    MemoryConfig,
    MemoryHierarchy,
    SetAssociativeCache,
)

__all__ = ["CacheConfig", "MemoryConfig", "MemoryHierarchy", "SetAssociativeCache"]
