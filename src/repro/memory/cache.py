"""Data-cache timing model.

Table 1: a 32KB 4-way set-associative L1 with 2-cycle access backed by an
infinite L2 with a 20-cycle access time.  The paper uses the infinite L2 to
keep simulations short; it verifies that conclusions also hold with a finite
L2 and 200-cycle memory, so we expose those as configuration too.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    size_bytes: int = 32 * 1024
    associativity: int = 4
    line_bytes: int = 64
    hit_latency: int = 2

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.line_bytes) != 0:
            raise ValueError(f"cache geometry does not divide evenly: {self}")
        if self.hit_latency < 0 or self.associativity <= 0 or self.line_bytes <= 0:
            raise ValueError(f"invalid cache config: {self}")

    @property
    def num_sets(self) -> int:
        """Number of sets implied by the geometry."""
        return self.size_bytes // (self.associativity * self.line_bytes)


class SetAssociativeCache:
    """An LRU set-associative cache tracking tags only (timing, not data)."""

    def __init__(self, config: CacheConfig | None = None):
        self.config = config or CacheConfig()
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.config.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Touch ``addr``; return True on hit.  Misses allocate (LRU evict)."""
        line = addr // self.config.line_bytes
        set_index = line % self.config.num_sets
        tag = line // self.config.num_sets
        ways = self._sets[set_index]
        if tag in ways:
            ways.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        ways[tag] = None
        if len(ways) > self.config.associativity:
            ways.popitem(last=False)
        return False

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit; 0.0 before any access."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class MemoryConfig:
    """The full data-memory hierarchy timing (Table 1 defaults)."""

    l1: CacheConfig = CacheConfig()
    l2_latency: int = 20
    # Table 1 uses an infinite L2.  Setting ``l2`` to a finite geometry plus a
    # ``memory_latency`` reproduces the paper's finite-L2 validation runs.
    l2: CacheConfig | None = None
    memory_latency: int = 200


class MemoryHierarchy:
    """Latency oracle for loads and stores, shared by all clusters."""

    def __init__(self, config: MemoryConfig | None = None):
        self.config = config or MemoryConfig()
        self.l1 = SetAssociativeCache(self.config.l1)
        self.l2 = SetAssociativeCache(self.config.l2) if self.config.l2 else None

    def load_latency(self, addr: int) -> int:
        """Cycles from issue to data return for a load at ``addr``."""
        if self.l1.access(addr):
            return self.config.l1.hit_latency
        if self.l2 is None:
            return self.config.l2_latency
        if self.l2.access(addr):
            return self.config.l2.hit_latency
        return self.config.memory_latency

    def store_access(self, addr: int) -> None:
        """Stores allocate in the cache but retire without stalling.

        The machine has perfect disambiguation and a store buffer; store
        latency is hidden, so only the tag state is updated.
        """
        if not self.l1.access(addr) and self.l2 is not None:
            self.l2.access(addr)
