"""Idealized list scheduling (the Section 2.2 potential study)."""

from repro.idealized.list_scheduler import (
    ListScheduleResult,
    PRIORITY_MODES,
    list_schedule,
)
from repro.idealized.regions import split_regions

__all__ = ["ListScheduleResult", "PRIORITY_MODES", "list_schedule", "split_regions"]
