"""Region partitioning for the idealized study (Section 2.2, footnote 2).

The paper list-schedules the whole execution trace by dividing it into
regions separated by mispredicted branches (the fetch-serializing events a
real machine cannot schedule across), summing the spans of the per-region
schedules as a conservative estimate of total runtime.  We additionally cap
region length at the ROB size, since no schedule could hold more
instructions in flight than the ROB admits.
"""

from __future__ import annotations

from typing import Sequence

from repro.vm.trace import DynamicInstruction


def split_regions(
    trace: Sequence[DynamicInstruction],
    mispredicted: frozenset[int] | set[int],
    max_length: int = 256,
) -> list[tuple[int, int]]:
    """Return half-open ``(start, stop)`` index ranges covering the trace.

    A region ends just after a mispredicted branch, or at ``max_length``,
    whichever comes first.
    """
    if max_length < 1:
        raise ValueError("max_length must be positive")
    regions = []
    start = 0
    for i, instr in enumerate(trace):
        ends_region = instr.index in mispredicted or (i - start + 1) >= max_length
        if ends_region:
            regions.append((start, i + 1))
            start = i + 1
    if start < len(trace):
        regions.append((start, len(trace)))
    return regions
