"""The idealized list scheduler (Section 2.2).

A global-view scheduler that performs steering and slotting in one pass over
the retired trace, establishing the performance *potential* of a clustered
configuration.  Idealizations, per the paper:

* a monolithic view of all in-flight instructions -- only the functional
  units are clustered;
* exact future knowledge within each region -- priorities favour
  instructions heading long dataflow chains and those on the backward slice
  of the region's mispredicted branch;
* locality awareness -- candidate clusters are compared by achievable start
  time, which automatically prefers a producer's cluster (a remote cluster
  sees the operand ``forwarding_latency`` cycles later).

Constraints honoured, per the paper: per-cycle issue-width and port limits
of the modelled cluster, the global communication penalty, the front end's
fetch bandwidth, and branch-misprediction latency (a region fetched after a
mispredicted branch cannot start before the branch's schedule time plus the
pipeline depth).

Priority modes implement the Section 4 in-text experiment: ``oracle`` (exact
future knowledge), ``loc`` (likelihood of criticality only) and ``binary``
(Fields-style critical/not-critical only).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.core.config import ClusterConfig, MachineConfig
from repro.core.rename import Dependences, build_consumer_lists
from repro.idealized.regions import split_regions
from repro.vm.isa import OpClass
from repro.vm.trace import DynamicInstruction

PRIORITY_MODES = ("oracle", "loc", "binary")

# Priority bonus for instructions on a mispredicted branch's backward slice:
# larger than any achievable dataflow depth within a region.
_SLICE_BONUS = 1_000_000


@dataclass
class ListScheduleResult:
    """Outcome of scheduling one full trace."""

    total_cycles: int
    instructions: int
    regions: int
    replications: int = 0

    @property
    def cpi(self) -> float:
        """Cycles per instruction of the idealized schedule."""
        return self.total_cycles / self.instructions if self.instructions else 0.0


def _port_class(opclass: OpClass) -> int:
    if opclass in (OpClass.LOAD, OpClass.STORE):
        return 2
    if opclass is OpClass.FP:
        return 1
    return 0


class _ClusterTable:
    """Per-cluster, per-cycle port occupancy."""

    def __init__(self, cluster: ClusterConfig):
        self._limits = (cluster.int_ports, cluster.fp_ports, cluster.mem_ports)
        self._width = cluster.issue_width
        # cycle -> [int_used, fp_used, mem_used, total_used]
        self._used: dict[int, list[int]] = {}

    def place(self, earliest: int, pclass: int) -> int:
        """Find and claim the first cycle >= earliest with a free port."""
        t = earliest
        while True:
            used = self._used.get(t)
            if used is None:
                used = [0, 0, 0, 0]
                self._used[t] = used
            if used[3] < self._width and used[pclass] < self._limits[pclass]:
                used[pclass] += 1
                used[3] += 1
                return t
            t += 1

    def probe(self, earliest: int, pclass: int) -> int:
        """Like :meth:`place` but without claiming the slot."""
        t = earliest
        while True:
            used = self._used.get(t)
            if used is None:
                return t
            if used[3] < self._width and used[pclass] < self._limits[pclass]:
                return t
            t += 1


def list_schedule(
    trace: Sequence[DynamicInstruction],
    dependences: Sequence[Dependences],
    mispredicted: frozenset[int],
    config: MachineConfig,
    latencies: Sequence[int],
    priority_mode: str = "oracle",
    loc_table: dict[int, float] | None = None,
    binary_table: dict[int, bool] | None = None,
    max_region: int = 256,
    allow_replication: bool = False,
) -> ListScheduleResult:
    """Build an idealized schedule and return its span.

    ``latencies`` must give each instruction's execution latency as observed
    on the monolithic machine (so cache behaviour is held constant across
    configurations).

    ``allow_replication`` permits re-executing a producer on the consumer's
    cluster (one level deep) when the replica finishes before the forwarded
    value would arrive -- the technique advocated for statically-scheduled
    clustered machines.  The paper's footnote 4 claims dynamic machines do
    not need it; ``benchmarks/test_ablation_replication.py`` verifies.
    """
    if priority_mode not in PRIORITY_MODES:
        raise ValueError(f"unknown priority mode {priority_mode!r}")
    if priority_mode == "loc" and loc_table is None:
        raise ValueError("loc priority mode needs a loc_table")
    if priority_mode == "binary" and binary_table is None:
        raise ValueError("binary priority mode needs a binary_table")

    consumers = build_consumer_lists(dependences)
    regions = split_regions(trace, mispredicted, max_length=max_region)
    fwd = config.forwarding_latency
    depth_to_dispatch = config.frontend.depth_to_dispatch
    fetch_width = config.frontend.width

    # finish[i]: cycle the result of i is available at its own cluster;
    # placed_cluster[i]: where it ran.
    finish = [0] * len(trace)
    placed_cluster = [0] * len(trace)

    total_end = 0
    replications = 0
    # Fetch stream state: the cycle the next region's first instruction can
    # dispatch (reset by misprediction redirects).
    fetch_base = depth_to_dispatch

    for start, stop in regions:
        region_end, redirect, region_replications = _schedule_region(
            trace,
            dependences,
            consumers,
            config,
            latencies,
            start,
            stop,
            fetch_base,
            fetch_width,
            fwd,
            finish,
            placed_cluster,
            priority_mode,
            loc_table,
            binary_table,
            mispredicted,
            allow_replication,
        )
        total_end = max(total_end, region_end)
        replications += region_replications
        if redirect is not None:
            fetch_base = redirect + depth_to_dispatch
        else:
            # Seamless fetch into the next region.
            fetch_base = fetch_base + max(1, (stop - start) // fetch_width)

    return ListScheduleResult(
        total_cycles=total_end,
        instructions=len(trace),
        regions=len(regions),
        replications=replications,
    )


def _schedule_region(
    trace,
    dependences,
    consumers,
    config: MachineConfig,
    latencies,
    start: int,
    stop: int,
    fetch_base: int,
    fetch_width: int,
    fwd: int,
    finish,
    placed_cluster,
    priority_mode: str,
    loc_table,
    binary_table,
    mispredicted,
    allow_replication: bool = False,
) -> tuple[int, int | None, int]:
    """Schedule one region; return (end, redirect time or None, replicas)."""
    priorities = _region_priorities(
        trace, dependences, consumers, latencies, start, stop,
        priority_mode, loc_table, binary_table, mispredicted,
    )
    tables = [_ClusterTable(entry) for entry in config.clusters]

    pending = [0] * (stop - start)
    for i in range(start, stop):
        pending[i - start] = sum(1 for d in dependences[i].all_deps if d >= start)
    ready: list[tuple[float, int]] = [
        (-priorities[i - start], i) for i in range(start, stop) if pending[i - start] == 0
    ]
    heapq.heapify(ready)

    region_end = fetch_base
    redirect = None
    replications = 0
    num_clusters = config.num_clusters

    def replica_option(dep: int, cluster: int) -> tuple[int, int] | None:
        """(ready, port class) for re-executing ``dep`` on ``cluster``.

        One level deep: the replica's own operands come from their original
        placements (forwarded if remote).  Loads and stores are never
        replicated (they would re-occupy a memory port and re-access the
        cache); neither are branches.
        """
        producer = trace[dep]
        if producer.opclass not in (
            OpClass.INT_ALU,
            OpClass.INT_MUL,
            OpClass.FP,
        ) or producer.dest is None:
            return None
        ready = fetch_base + (dep - start) // fetch_width
        for ddep in dependences[dep].all_deps:
            if ddep < start:
                continue
            is_mem = dependences[dep].mem_dep == ddep
            penalty = 0 if (is_mem or placed_cluster[ddep] == cluster) else fwd
            ready = max(ready, finish[ddep] + penalty)
        return ready, _port_class(producer.opclass)

    while ready:
        __, i = heapq.heappop(ready)
        instr = trace[i]
        pclass = _port_class(instr.opclass)
        fetch_time = fetch_base + (i - start) // fetch_width

        # Earliest data-ready time per cluster, optionally improved by
        # replicating remote producers locally.
        local_ready = [fetch_time] * num_clusters
        replicas: list[list[tuple[int, int, int]]] = [
            [] for __ in range(num_clusters)
        ]
        for dep in dependences[i].all_deps:
            if dep < start:
                continue
            is_mem = dependences[i].mem_dep == dep
            for c in range(num_clusters):
                penalty = 0 if (is_mem or placed_cluster[dep] == c) else fwd
                avail = finish[dep] + penalty
                if allow_replication and penalty:
                    option = replica_option(dep, c)
                    if option is not None:
                        rep_ready, rep_pclass = option
                        rep_slot = tables[c].probe(rep_ready, rep_pclass)
                        rep_avail = rep_slot + latencies[dep]
                        if rep_avail < avail:
                            avail = rep_avail
                            replicas[c].append((dep, rep_ready, rep_pclass))
                if avail > local_ready[c]:
                    local_ready[c] = avail

        best_cluster = 0
        best_time = None
        for c in range(num_clusters):
            t = tables[c].probe(local_ready[c], pclass)
            if best_time is None or t < best_time:
                best_cluster, best_time = c, t
        # Materialize any replicas the chosen cluster's timing relied on.
        for dep, rep_ready, rep_pclass in replicas[best_cluster]:
            rep_slot = tables[best_cluster].place(rep_ready, rep_pclass)
            rep_avail = rep_slot + latencies[dep]
            replications += 1
            if rep_avail > local_ready[best_cluster]:
                local_ready[best_cluster] = rep_avail
        placed = tables[best_cluster].place(local_ready[best_cluster], pclass)
        placed_cluster[i] = best_cluster
        finish[i] = placed + latencies[i]
        if finish[i] > region_end:
            region_end = finish[i]
        if instr.index in mispredicted:
            redirect = finish[i]

        for consumer in consumers[i]:
            if consumer < stop:
                pending[consumer - start] -= 1
                if pending[consumer - start] == 0:
                    heapq.heappush(
                        ready, (-priorities[consumer - start], consumer)
                    )

    return region_end, redirect, replications


def _region_priorities(
    trace,
    dependences,
    consumers,
    latencies,
    start: int,
    stop: int,
    priority_mode: str,
    loc_table,
    binary_table,
    mispredicted,
) -> list[float]:
    """Per-instruction scheduling priority within one region."""
    n = stop - start
    if priority_mode == "loc":
        return [loc_table.get(trace[i].pc, 0.0) for i in range(start, stop)]
    if priority_mode == "binary":
        return [
            1.0 if binary_table.get(trace[i].pc, False) else 0.0
            for i in range(start, stop)
        ]

    # Oracle: dataflow height within the region...
    depth = [0.0] * n
    for i in range(stop - 1, start - 1, -1):
        best = 0.0
        for consumer in consumers[i]:
            if consumer < stop and depth[consumer - start] > best:
                best = depth[consumer - start]
        depth[i - start] = latencies[i] + best

    # ...plus a dominant bonus on the backward slice of the terminating
    # mispredicted branch (resolving it sooner shortens the next region's
    # start).
    if stop - 1 >= start and trace[stop - 1].index in mispredicted:
        on_slice = [False] * n
        on_slice[n - 1] = True
        for i in range(stop - 1, start - 1, -1):
            if not on_slice[i - start]:
                continue
            for dep in dependences[i].all_deps:
                if dep >= start:
                    on_slice[dep - start] = True
        for k in range(n):
            if on_slice[k]:
                depth[k] += _SLICE_BONUS
    return depth
