#!/usr/bin/env python3
"""Policy comparison: the paper's Figure 14 walk, one benchmark at a time.

For each requested benchmark and cluster count, runs the full ladder of
steering/scheduling policies -- modulo, load-balance, dependence, focused,
+LoC (l), +stall-over-steer (s), +proactive (p) -- and prints normalized
CPI so the contribution of each policy is visible.

Usage::

    python examples/policy_comparison.py [kernel ...]
"""

import sys

from repro.api import (
    ClusteredSimulator,
    LoadBalanceSteering,
    ModuloSteering,
    OldestFirstScheduler,
    Workbench,
    format_table,
    get_kernel,
    monolithic_machine,
    suite_names,
)

LADDER = ["modulo", "loadbal", "dependence", "focused", "l", "s", "p"]


def run_simple(bench, spec, config, steering_class):
    prepared = bench.prepare(spec)
    sim = ClusteredSimulator(
        config,
        steering=steering_class(),
        scheduler=OldestFirstScheduler(),
        max_cycles=64 * len(prepared.trace) + 10_000,
    )
    return sim.run(prepared.trace, prepared.dependences, prepared.mispredicted)


def main() -> None:
    names = sys.argv[1:] or ["gzip", "vpr"]
    bench = Workbench(instructions=8000)
    for name in names:
        if name not in suite_names():
            raise SystemExit(f"unknown kernel {name!r}; choose from {suite_names()}")
        spec = get_kernel(name)
        base = bench.run(spec, monolithic_machine(), "l").cpi
        rows = []
        for clusters in (2, 4, 8):
            config = bench.clustered(clusters)
            row = [f"{clusters} clusters"]
            for policy in LADDER:
                if policy == "modulo":
                    cpi = run_simple(bench, spec, config, ModuloSteering).cpi
                elif policy == "loadbal":
                    cpi = run_simple(bench, spec, config, LoadBalanceSteering).cpi
                else:
                    cpi = bench.run(spec, config, policy).cpi
                row.append(cpi / base)
            rows.append(row)
        print(f"\n== {name}: normalized CPI by policy (vs monolithic+LoC) ==")
        print(format_table(["config", *LADDER], rows))
    print(
        "\nEach column adds one idea: dependence steering beats locality-"
        "blind policies; criticality focuses it; LoC, stall-over-steer and "
        "proactive load-balancing are the paper's three contributions."
    )


if __name__ == "__main__":
    main()
