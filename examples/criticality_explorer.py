#!/usr/bin/env python3
"""Criticality explorer: dissect one workload's critical path.

Reproduces, for a single benchmark, the paper's analysis pipeline:

1. simulate the monolithic machine and extract the critical path;
2. print the CPI breakdown (Figure 5 style) and the hottest critical PCs;
3. print the per-PC likelihood-of-criticality table and its distribution
   (Figure 8 style);
4. print the slack distribution, illustrating why slack is impractical as
   a static metric (Section 4's slack discussion).

Usage::

    python examples/criticality_explorer.py [kernel] [instructions]
"""

import sys
from collections import defaultdict

from repro.api import (
    Workbench,
    analyze_critical_path,
    compute_global_slack,
    contention_hotspots,
    critical_flags,
    exact_loc_by_pc,
    format_histogram,
    format_table,
    get_kernel,
    monolithic_machine,
    render_pipeline,
    slack_histogram,
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "vpr"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 8000
    kernel = get_kernel(name)
    bench = Workbench(instructions=instructions)
    result = bench.run(kernel, monolithic_machine(), "focused")

    print(f"== {name}: {instructions} instructions, "
          f"{result.cycles} cycles, CPI {result.cpi:.3f} ==\n")

    analysis = analyze_critical_path(result.records)
    print("critical-path cycle attribution:")
    rows = [
        [category, cycles, 100.0 * cycles / analysis.total_cycles]
        for category, cycles in sorted(
            analysis.breakdown.items(), key=lambda kv: -kv[1]
        )
        if cycles
    ]
    print(format_table(["category", "cycles", "percent"], rows))

    flags = critical_flags(result.records)
    loc = exact_loc_by_pc(result.records, flags)
    by_pc = defaultdict(int)
    for record in result.records:
        by_pc[record.instr.pc] += 1
    hottest = sorted(loc, key=lambda pc: -(loc[pc] * by_pc[pc]))[:8]
    print("\nmost critical static instructions (by LoC x frequency):")
    rows = [
        [pc, result.records[_first_at(result.records, pc)].instr.opcode,
         by_pc[pc], loc[pc]]
        for pc in hottest
    ]
    print(format_table(["pc", "opcode", "dynamic_count", "loc"], rows))

    print("\nLoC distribution over dynamic instructions (Figure 8 style):")
    bins = [0] * 11
    for record in result.records:
        bins[min(10, int(loc[record.instr.pc] * 10))] += 1
    labels = [f"{10 * i}-{10 * i + 9}%" for i in range(10)] + ["100%"]
    print(format_histogram(labels, [100.0 * b / len(result.records) for b in bins]))

    print("\nslack distribution (cycles of global slack per instruction):")
    slacks = compute_global_slack(result.records, result.config)
    histogram = slack_histogram(slacks, bin_width=10, max_bins=8)
    print(format_histogram([label for label, __ in histogram],
                           [count for __, count in histogram]))
    print(
        "\nNote the contrast the paper draws in Section 4: slack varies "
        "hugely across instances, while LoC is a stable per-PC property."
    )

    print("\npipeline view around the worst contention stall:")
    hotspots = contention_hotspots(result.records, top=1)
    anchor = hotspots[0][0] if hotspots else len(result.records) // 2
    print(render_pipeline(result.records, start=max(0, anchor - 6), count=14))


def _first_at(records, pc):
    for i, record in enumerate(records):
        if record.instr.pc == pc:
            return i
    raise KeyError(pc)


if __name__ == "__main__":
    main()
