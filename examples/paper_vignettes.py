#!/usr/bin/env python3
"""Paper vignettes: reproduce the illustrative figures, not just the data.

Walks through the paper's three code examples on live simulations:

* **Figure 9** -- a single dependence chain is smeared across every
  cluster by load-balance steering, inserting a forwarding delay every
  window-size instructions; stall-over-steer removes it.
* **Figure 3** -- convergent dataflow (bzip2): two load chains meet at a
  dyadic xor; on 1-wide clusters either a forwarding delay or contention
  is unavoidable.
* **Figures 12/13** -- divergent dataflow: when only the first consumer is
  collocated, the loop recurrence (the last consumer!) gets pushed off its
  cluster; proactive load-balancing keeps the spine home.

Usage::

    python examples/paper_vignettes.py
"""

from repro.api import (
    ClusteredSimulator,
    CriticalitySteering,
    CriticalitySteeringConfig,
    DependenceSteering,
    LocScheduler,
    OldestFirstScheduler,
    clustered_machine,
    convergent_pairs,
    divergent_tree,
    render_pipeline,
    serial_chain,
)


class ChainOracle:
    """LoC oracle for the vignettes.

    The serial-chain and recurrence PCs are highly critical; divergent rib
    consumers are not (they terminate).  This stands in for a trained
    predictor so each vignette isolates its steering effect.
    """

    def __init__(self, critical_pcs=None):
        self.critical_pcs = critical_pcs  # None = everything critical

    def predict_critical(self, pc):
        return self.critical_pcs is None or pc in self.critical_pcs

    def loc(self, pc):
        return 0.9 if self.predict_critical(pc) else 0.03


def run(trace, steering, predictors=None):
    sim = ClusteredSimulator(
        clustered_machine(8),
        steering=steering,
        scheduler=LocScheduler() if predictors else OldestFirstScheduler(),
        predictors=predictors,
        max_cycles=200_000,
    )
    return sim.run(trace, mispredicted=frozenset())


def figure9() -> None:
    print("=" * 70)
    print("Figure 9: load-balance steering smears a dependence chain")
    trace = serial_chain(200)
    balanced = run(trace, DependenceSteering())
    stalled = run(
        trace,
        CriticalitySteering(
            CriticalitySteeringConfig(preference="loc", stall_over_steer=True)
        ),
        predictors=ChainOracle(),
    )
    hops = sum(1 for r in balanced.records if r.critical_operand_forwarded)
    hops_stalled = sum(1 for r in stalled.records if r.critical_operand_forwarded)
    print(f"  load-balance on full: {balanced.cycles} cycles, "
          f"{hops} cross-cluster hops on the chain")
    print(f"  stall-over-steer:     {stalled.cycles} cycles, "
          f"{hops_stalled} hops")
    print("  -> stalling eliminates the forwarding delay entirely, at no "
          "cost (fetch was not the bottleneck).")


def figure3() -> None:
    print("=" * 70)
    print("Figure 3: convergent dataflow on 1-wide clusters")
    trace = convergent_pairs(60)
    result = run(trace, DependenceSteering())
    dyadic_remote = sum(
        1
        for r in result.records
        if len(r.deps.reg_deps) == 2 and r.critical_operand_forwarded
    )
    dyadic_local_contention = sum(
        r.contention_cycles
        for r in result.records
        if len(r.deps.reg_deps) == 2
    )
    print(f"  {dyadic_remote} convergent consumers paid a forwarding delay;")
    print(f"  {dyadic_local_contention} contention cycles hit collocated ones.")
    print("  -> with 1-wide clusters one of the two penalties is "
          "unavoidable: the paper's fundamental (but small) limit.")


def figures12_13() -> None:
    print("=" * 70)
    print("Figures 12/13: divergent dataflow and the last-consumer problem")
    trace = divergent_tree(fanout=7, groups=40)
    naive = run(trace, DependenceSteering())
    proactive = run(
        trace,
        CriticalitySteering(
            CriticalitySteeringConfig(
                preference="loc", stall_over_steer=True, proactive=True
            )
        ),
        # Only the recurrence (pc 7) is critical; the ribs are slack.
        predictors=ChainOracle(critical_pcs={0, 7}),
    )
    spine_hops = sum(
        1
        for r in naive.records
        if r.instr.pc == 7 and r.critical_operand_forwarded
    )
    spine_hops_pro = sum(
        1
        for r in proactive.records
        if r.instr.pc == 7 and r.critical_operand_forwarded
    )
    print(f"  dependence steering: {naive.cycles} cycles, recurrence "
          f"crossed clusters {spine_hops} times")
    print(f"  proactive balancing: {proactive.cycles} cycles, "
          f"{spine_hops_pro} recurrence hops")
    print("\n  pipeline view (proactive), one divergence group:")
    print(render_pipeline(proactive.records, start=100, count=8, max_width=70))


def main() -> None:
    figure9()
    figure3()
    figures12_13()


if __name__ == "__main__":
    main()
