#!/usr/bin/env python3
"""Quickstart: simulate one workload on monolithic and clustered machines.

Runs the paper's vpr-style heap-walk kernel through the 1x8w baseline and
its 2/4/8-cluster splits under the full policy stack, and prints the CPI,
the clustering penalty, and where the lost cycles went.

Usage::

    python examples/quickstart.py [instructions]
"""

import sys

from repro.api import (
    Workbench,
    clustered_machine,
    cpi_breakdown,
    format_table,
    get_kernel,
    monolithic_machine,
)


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 8000
    bench = Workbench(instructions=instructions)
    kernel = get_kernel("vpr")
    print(f"kernel: {kernel.name} -- {kernel.description}")
    print(f"paper feature: {kernel.paper_feature}")
    print(f"trace length: {instructions} dynamic instructions\n")

    baseline = bench.run(kernel, monolithic_machine(), "l")
    rows = []
    for clusters in (1, 2, 4, 8):
        config = (
            monolithic_machine() if clusters == 1 else clustered_machine(clusters)
        )
        # 'l'+'s'(+'p' on 8x1w): the paper's best stack per configuration.
        policy = "p" if clusters == 8 else ("s" if clusters > 1 else "l")
        result = bench.run(kernel, config, policy)
        breakdown = cpi_breakdown(result).normalized(baseline.cpi)
        rows.append(
            [
                config.name,
                policy,
                result.cpi,
                result.cpi / baseline.cpi,
                breakdown["fwd_delay"],
                breakdown["contention"],
                result.global_values_per_instruction,
            ]
        )
    print(
        format_table(
            ["config", "policy", "cpi", "norm_cpi", "fwd_delay", "contention",
             "gvals/instr"],
            rows,
        )
    )
    print(
        "\nnorm_cpi is relative to the monolithic machine; fwd_delay and "
        "contention are the clustering penalties on the critical path."
    )


if __name__ == "__main__":
    main()
