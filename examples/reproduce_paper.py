#!/usr/bin/env python3
"""Reproduce every figure and in-text claim of the paper in one command.

A thin convenience wrapper over the experiment registry -- equivalent to::

    python -m repro.experiments all --instructions N --out results/

but with a compact progress line per experiment and a closing summary of
the headline numbers (Figures 2, 4 and 14).

Usage::

    python examples/reproduce_paper.py [instructions]
"""

import sys
import time

from repro.api import EXPERIMENTS, Workbench


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 8000
    bench = Workbench(instructions=instructions)
    figures = {}
    for name, experiment in EXPERIMENTS.items():
        start = time.time()
        figures[name] = experiment(bench)
        print(f"[{name}: {time.time() - start:5.1f}s]")
        print(figures[name])
        print()

    ideal = figures["figure2"].row_for("AVE")
    focused = figures["figure4"].row_for("AVE")
    print("=" * 68)
    print("Headline (suite averages, normalized CPI at 2/4/8 clusters):")
    print(f"  idealized potential (Fig 2):  "
          f"{ideal[1]:.3f} / {ideal[2]:.3f} / {ideal[3]:.3f}")
    print(f"  focused steering    (Fig 4):  "
          f"{focused[1]:.3f} / {focused[2]:.3f} / {focused[3]:.3f}")
    stacked = {
        (row[1], row[2]): row[3]
        for row in figures["figure14"].rows
        if row[0] == "AVE"
    }
    print(f"  full policy stack  (Fig 14):  "
          f"{stacked[(2, 's')]:.3f} / {stacked[(4, 's')]:.3f} / "
          f"{stacked[(8, 'p')]:.3f}")
    print("Paper: idealized < 1.02 everywhere; focused ~1.05/1.1+/1.2; "
          "policies recover half to two-thirds of the penalty.")


if __name__ == "__main__":
    main()
