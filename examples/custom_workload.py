#!/usr/bin/env python3
"""Custom workload: write your own kernel and analyze it.

Shows the full public API surface end to end:

1. write a kernel in the mini assembly (here: the paper's Figure 12 loop --
   an array search with an early exit, compiled to two loop-carried
   dependences);
2. execute it to a dynamic trace;
3. simulate it on a clustered machine with the policy stack of your choice;
4. inspect steering decisions and the critical path.

Usage::

    python examples/custom_workload.py
"""

from collections import Counter

from repro.api import (
    ClusteredSimulator,
    GshareBranchPredictor,
    analyze_critical_path,
    annotate_mispredictions,
    assemble,
    clustered_machine,
    extract_dependences,
    format_table,
    interpret,
    monolithic_machine,
    resolve_policy,
    seeded_rng,
)

# The paper's Figure 12(a): for (i = 0; i < N; ++i) if (A[i] == a) break;
# compiled, as in Figure 12(b), with two separate loop-carried dependences
# (the index in r4, the pointer in r2).
FIGURE12_SOURCE = """
# r0: the value searched for, r2: pointer into A, r4: i, r5: N
search:
    li   r4, 0
    li   r2, 1024
loop:
    addi r4, r4, 1          # loop-carried dependence 1 (index)
    ld   r7, 0(r2)          # A[i]
    cmple r3, r4, r5
    lda:
    addi r2, r2, 1          # loop-carried dependence 2 (pointer)
    cmpeq r6, r7, r0
    bne  r6, found          # early exit (rarely taken)
    bne  r3, loop
found:
    br   search             # restart the search forever
"""


def build_trace(instructions=6000):
    rng = seeded_rng("figure12")
    memory = {1024 + i: rng.randrange(1000) for i in range(4096)}
    # Plant the searched-for value sparsely so the early exit fires rarely.
    value = 7777
    for pos in range(200, 4096, 391):
        memory[1024 + pos] = value
    return interpret(
        assemble(FIGURE12_SOURCE),
        instructions,
        initial_memory=memory,
        initial_regs={0: value, 5: 4096},
    )


def main() -> None:
    trace = build_trace()
    deps = extract_dependences(trace)
    mispredicted = frozenset(
        annotate_mispredictions(trace, GshareBranchPredictor())
    )
    print(f"trace: {len(trace)} instructions, "
          f"{len(mispredicted)} mispredicted branches\n")

    rows = []
    mono = ClusteredSimulator(monolithic_machine(), max_cycles=500_000).run(
        trace, deps, mispredicted
    )
    for policy_name in ("dependence", "focused", "p"):
        steering, scheduler, needs_predictors = resolve_policy(policy_name).build()
        extra = {}
        if needs_predictors:
            from repro.criticality.loc import PredictorSuite
            from repro.criticality.trainer import ChunkedCriticalityTrainer

            suite = PredictorSuite()
            extra = dict(
                predictors=suite, trainer=ChunkedCriticalityTrainer(suite)
            )
        sim = ClusteredSimulator(
            clustered_machine(8),
            steering=steering,
            scheduler=scheduler,
            max_cycles=500_000,
            **extra,
        )
        result = sim.run(trace, deps, mispredicted)
        analysis = analyze_critical_path(result.records)
        causes = Counter(rec.steer_cause.value for rec in result.records)
        rows.append(
            [
                policy_name,
                result.cpi / mono.cpi,
                analysis.breakdown["fwd_delay"],
                analysis.breakdown["contention"],
                causes.most_common(1)[0][0],
            ]
        )
    print(format_table(
        ["policy", "norm_cpi_8x1w", "fwd_cycles", "contention_cycles",
         "top_steer_cause"],
        rows,
    ))
    print(
        "\nFigure 12's divergent trees punish naive collocation on 1-wide "
        "clusters; proactive load-balancing (policy p) spreads the "
        "consumers while keeping each recurrence local."
    )


if __name__ == "__main__":
    main()
