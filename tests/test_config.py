"""Unit tests for machine configurations (Table 1 and its splits)."""

import pytest

from repro.core.config import (
    ClusterConfig,
    MachineConfig,
    clustered_machine,
    monolithic_machine,
)
from repro.vm.isa import OpClass


class TestMonolithic:
    def test_table1_totals(self):
        config = monolithic_machine()
        assert config.num_clusters == 1
        assert config.cluster.issue_width == 8
        assert config.cluster.int_ports == 8
        assert config.cluster.fp_ports == 4
        assert config.cluster.mem_ports == 4
        assert config.cluster.window_size == 128
        assert config.rob_size == 256
        assert config.name == "1x8w"


class TestClusteredSplits:
    @pytest.mark.parametrize(
        "count,width,window", [(2, 4, 64), (4, 2, 32), (8, 1, 16)]
    )
    def test_equal_division(self, count, width, window):
        config = clustered_machine(count)
        assert config.cluster.issue_width == width
        assert config.cluster.window_size == window
        assert config.total_issue_width == 8
        assert config.total_window_size == 128

    def test_8x1w_rounds_up_fp_and_mem(self):
        # Footnote 1: partial resources round up, so every 1-wide cluster
        # keeps a memory port and an FP unit.
        config = clustered_machine(8)
        assert config.cluster.fp_ports == 1
        assert config.cluster.mem_ports == 1

    def test_4x2w_has_single_mem_port(self):
        config = clustered_machine(4)
        assert config.cluster.mem_ports == 1
        assert config.cluster.fp_ports == 1
        assert config.cluster.int_ports == 2

    def test_names(self):
        assert clustered_machine(4).name == "4x2w"
        assert clustered_machine(8).name == "8x1w"

    def test_forwarding_latency_override(self):
        assert clustered_machine(2, forwarding_latency=4).forwarding_latency == 4

    def test_non_divisor_rejected(self):
        with pytest.raises(ValueError):
            clustered_machine(3)

    def test_negative_forwarding_rejected(self):
        with pytest.raises(ValueError):
            clustered_machine(2, forwarding_latency=-1)


class TestClusterConfig:
    def test_ports_for_class(self):
        cluster = ClusterConfig(
            issue_width=2, int_ports=2, fp_ports=1, mem_ports=1, window_size=32
        )
        assert cluster.ports_for(OpClass.INT_ALU) == 2
        assert cluster.ports_for(OpClass.INT_MUL) == 2
        assert cluster.ports_for(OpClass.BRANCH) == 2
        assert cluster.ports_for(OpClass.FP) == 1
        assert cluster.ports_for(OpClass.LOAD) == 1
        assert cluster.ports_for(OpClass.STORE) == 1

    def test_nonpositive_resources_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(
                issue_width=0, int_ports=1, fp_ports=1, mem_ports=1, window_size=16
            )

    def test_rob_must_cover_windows(self):
        with pytest.raises(ValueError):
            MachineConfig(
                num_clusters=1,
                cluster=ClusterConfig(
                    issue_width=8,
                    int_ports=8,
                    fp_ports=4,
                    mem_ports=4,
                    window_size=512,
                ),
                rob_size=256,
            )
