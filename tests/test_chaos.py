"""Fault-injection coverage for the resilient execution layer.

The contract under test (ISSUE 5): a sweep under injected faults --
worker crashes, hangs past the job timeout, garbled results, corrupted
cache bytes, an interrupt halfway through -- converges to results
**bit-identical** to a fault-free run, renders explicit FAILED/TIMEOUT
cells for jobs that exhaust their retry budget, and resumes an
interrupted sweep re-executing only its unfinished jobs.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.serialize import results_identical
from repro.core.simulator import SimulationDeadlock, SimulationDiverged
from repro.experiments import parallel
from repro.experiments.cache import RunCache, job_key
from repro.experiments.harness import Workbench
from repro.experiments.manifest import SweepManifest, default_manifest_dir
from repro.experiments.outcomes import (
    ExecutionPolicy,
    JobOutcome,
    OutcomeStats,
    RunFailure,
    RunFailureError,
    classify_failure,
)
from repro.experiments.parallel import execute_outcomes, run_job_outcome
from repro.experiments.sweep import run_spec
from repro.specs import ExperimentSpec, spec_hash
from repro.testing.chaos import (
    ChaosConfig,
    ChaosError,
    FaultRule,
    corrupt_cache_entry,
    install,
    uninstall,
)
from repro.workloads.suite import get_kernel

INSTRUCTIONS = 400


@pytest.fixture(autouse=True)
def _no_leftover_chaos(monkeypatch):
    """Every test starts and ends fault-free."""
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    uninstall()
    yield
    uninstall()


def make_bench(cache=None, workers=0, **kwargs):
    kwargs.setdefault("instructions", INSTRUCTIONS)
    kwargs.setdefault("benchmarks", [get_kernel("gcc"), get_kernel("mcf")])
    return Workbench(cache=cache, workers=workers, **kwargs)


def fault_on_attempts(action, attempts, kernel=None):
    """A hook firing ``action`` on the given attempt numbers (all jobs)."""

    def hook(job, attempt):
        if kernel is not None and job.kernel != kernel:
            return None
        return action if attempt in attempts else None

    return hook


class TestChaosConfig:
    def test_actions_are_deterministic(self):
        bench = make_bench()
        job = bench.job(get_kernel("gcc"), bench.clustered(2), "l")
        config = ChaosConfig(crash_rate=0.5, seed=7)
        assert config.action_for(job, 1) == config.action_for(job, 1)

    def test_rate_crashes_fire_on_first_attempt_only(self):
        bench = make_bench()
        config = ChaosConfig(crash_rate=1.0)
        job = bench.job(get_kernel("gcc"), bench.clustered(2), "l")
        assert config.action_for(job, 1) == "crash"
        assert config.action_for(job, 2) is None

    def test_rule_matching_and_attempt_filter(self):
        bench = make_bench()
        rule = FaultRule(mode="error", match={"kernel": "gcc"}, attempts=(2,))
        gcc = bench.job(get_kernel("gcc"), bench.clustered(2), "l")
        mcf = bench.job(get_kernel("mcf"), bench.clustered(2), "l")
        assert not rule.matches(gcc, 1)
        assert rule.matches(gcc, 2)
        assert not rule.matches(mcf, 2)

    def test_json_round_trip(self):
        config = ChaosConfig(
            rules=(FaultRule(mode="hang", match={"kernel": "gcc"}, rate=0.5),),
            crash_rate=0.1,
            seed=3,
            hang_seconds=2.0,
        )
        import json

        rebuilt = ChaosConfig.from_dict(json.loads(config.env_value()))
        assert rebuilt == config

    def test_bad_mode_and_rates_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(mode="meltdown")
        with pytest.raises(ValueError):
            ChaosConfig(crash_rate=1.5)


class TestClassification:
    def test_diverged_is_final(self):
        failure = classify_failure(SimulationDiverged(10, 3, 20), 1, 0.1)
        assert failure.kind == "diverged"
        assert not failure.retryable
        assert failure.label() == "FAILED(diverged)"

    def test_deadlock_alias_still_classifies(self):
        # Historical alias: old call sites raising SimulationDeadlock are
        # the same type and classify identically.
        assert SimulationDeadlock is SimulationDiverged

    def test_chaos_error_is_injected_and_timeout_labelled(self):
        injected = classify_failure(ChaosError("boom"), 2, 0.5)
        assert injected.kind == "injected"
        assert injected.retryable
        timeout = classify_failure(TimeoutError("too slow"), 1, 9.0)
        assert timeout.label() == "TIMEOUT"

    def test_outcome_needs_exactly_one_of_result_failure(self):
        bench = make_bench()
        job = bench.job(get_kernel("gcc"), bench.clustered(2), "l")
        with pytest.raises(ValueError):
            JobOutcome(job=job)
        failure = RunFailure("error", "X", "y", 1, 0.0)
        with pytest.raises(RunFailureError):
            JobOutcome(job=job, failure=failure).unwrap()


class TestSerialRetries:
    def test_transient_error_retries_to_identical_result(self):
        bench = make_bench()
        spec = get_kernel("gcc")
        clean = bench.run(spec, bench.clustered(2), "l")

        install(fault_on_attempts("error", {1}))
        bench2 = make_bench()
        stats = OutcomeStats()
        job = bench2.job(spec, bench2.clustered(2), "l")
        outcome = run_job_outcome(
            job, bench2.prepare(spec), policy=ExecutionPolicy(), stats=stats
        )
        assert outcome.ok and outcome.attempts == 2
        assert stats.retries == 1
        assert results_identical(outcome.result, clean)

    def test_garbage_result_rejected_and_retried(self):
        bench = make_bench()
        spec = get_kernel("gcc")
        clean = bench.run(spec, bench.clustered(2), "l")

        install(fault_on_attempts("garbage", {1}))
        bench2 = make_bench()
        outcome = bench2.outcome(spec, bench2.clustered(2), "l")
        assert outcome.ok and outcome.attempts == 2
        assert results_identical(outcome.result, clean)
        assert outcome.result.cycles > 0

    def test_exhausted_retries_yield_typed_failure(self):
        install(fault_on_attempts("error", {1, 2, 3, 4}))
        bench = make_bench(execution=ExecutionPolicy(max_retries=2))
        outcome = bench.outcome(get_kernel("gcc"), bench.clustered(2), "l")
        assert not outcome.ok
        assert outcome.failure.kind == "injected"
        assert outcome.failure.attempts == 3  # 1 + max_retries
        assert outcome.failure.error_type == "ChaosError"
        assert len(outcome.failure.traceback_digest) == 16

    def test_diverged_not_retried(self, monkeypatch):
        bench = make_bench()
        spec = get_kernel("gcc")
        job = bench.job(spec, bench.clustered(2), "l")

        def explode(job, prepared=None, tracer=None):
            raise SimulationDiverged(100, 5, 400)

        monkeypatch.setattr(parallel, "execute_job", explode)
        stats = OutcomeStats()
        outcome = run_job_outcome(job, policy=ExecutionPolicy(), stats=stats)
        assert not outcome.ok
        assert outcome.failure.kind == "diverged"
        assert outcome.attempts == 1
        assert stats.retries == 0

    def test_failed_job_not_rerun_by_workbench(self):
        install(fault_on_attempts("error", {1, 2, 3, 4}))
        bench = make_bench(execution=ExecutionPolicy(max_retries=1))
        spec = get_kernel("gcc")
        first = bench.outcome(spec, bench.clustered(2), "l")
        executed = bench.exec_stats.executed
        retries = bench.exec_stats.retries
        second = bench.outcome(spec, bench.clustered(2), "l")
        assert second is first
        assert bench.exec_stats.executed == executed
        assert bench.exec_stats.retries == retries
        with pytest.raises(RunFailureError):
            bench.run(spec, bench.clustered(2), "l")
        assert [o.failure.kind for o in bench.failed_outcomes()] == ["injected"]

    def test_fail_fast_raises(self):
        install(fault_on_attempts("error", {1, 2}))
        bench = make_bench(
            execution=ExecutionPolicy(max_retries=1, fail_fast=True)
        )
        with pytest.raises(RunFailureError):
            bench.outcome(get_kernel("gcc"), bench.clustered(2), "l")


class TestPoolChaos:
    """Faults inside real worker processes, via the REPRO_CHAOS env var."""

    def test_worker_crash_respawns_pool_and_matches_fault_free(
        self, monkeypatch
    ):
        clean_bench = make_bench()
        spec = get_kernel("gcc")
        jobs = [
            clean_bench.job(spec, clean_bench.clustered(n), "l") for n in (2, 4)
        ]
        clean = [clean_bench.run(spec, clean_bench.clustered(n), "l") for n in (2, 4)]

        config = ChaosConfig(
            rules=(FaultRule(mode="crash", match={"kernel": "gcc"}, attempts=(1,)),)
        )
        monkeypatch.setenv("REPRO_CHAOS", config.env_value())
        bench = make_bench(workers=2)
        stats = bench.exec_stats
        assert bench.prefetch(jobs) == 2
        assert stats.pool_respawns >= 1
        for job, expected in zip(jobs, clean):
            assert results_identical(bench.result_for(job), expected)

    def test_job_timeout_kills_hung_worker_and_retries(self, monkeypatch):
        # Two jobs: a single job takes execute_outcomes' serial shortcut,
        # where wall-time budgets are (documentedly) not enforced.
        clean_bench = make_bench()
        spec = get_kernel("gcc")
        clean = [clean_bench.run(spec, clean_bench.clustered(n), "l") for n in (2, 4)]

        config = ChaosConfig(
            rules=(FaultRule(mode="hang", attempts=(1,)),), hang_seconds=20.0
        )
        monkeypatch.setenv("REPRO_CHAOS", config.env_value())
        bench = make_bench(
            workers=2,
            execution=ExecutionPolicy(max_retries=2, job_timeout=1.0),
        )
        jobs = [bench.job(spec, bench.clustered(n), "l") for n in (2, 4)]
        assert bench.prefetch(jobs) == 2
        assert bench.exec_stats.timeouts >= 1
        for job, expected in zip(jobs, clean):
            assert results_identical(bench.result_for(job), expected)

    def test_timeout_without_retries_reports_timeout_cell(self, monkeypatch):
        config = ChaosConfig(rules=(FaultRule(mode="hang"),), hang_seconds=20.0)
        monkeypatch.setenv("REPRO_CHAOS", config.env_value())
        bench = make_bench(
            workers=2,
            execution=ExecutionPolicy(max_retries=0, job_timeout=0.8),
        )
        jobs = [bench.job(get_kernel("gcc"), bench.clustered(n), "l") for n in (2, 4)]
        assert bench.prefetch(jobs) == 0
        for job in jobs:
            outcome = bench.failure_for(job)
            assert outcome is not None
            assert outcome.failure.kind == "timeout"
            assert outcome.failure.label() == "TIMEOUT"

    def test_figure14_sweep_under_crash_rate_is_bit_identical(
        self, monkeypatch, tmp_path
    ):
        """Scaled-down acceptance run: Figure 14 under a 30% crash rate
        plus one corrupted cache entry completes with output identical to
        the fault-free sweep."""
        from repro.experiments.fig14 import run_figure14

        kernels = [get_kernel("gcc"), get_kernel("mcf")]
        clean_bench = Workbench(instructions=INSTRUCTIONS, benchmarks=kernels)
        clean = str(run_figure14(clean_bench))

        cache = RunCache(tmp_path / "cache")
        bench = Workbench(
            instructions=INSTRUCTIONS,
            benchmarks=kernels,
            workers=2,
            cache=cache,
        )
        # Pre-corrupt one entry: store a real result, then damage it.
        spec = get_kernel("gcc")
        victim = bench.job(spec, bench.clustered(2), "focused")
        cache.store(victim, clean_bench.run(spec, clean_bench.clustered(2), "focused"))
        with pytest.warns(RuntimeWarning, match="quarantined"):
            corrupt_cache_entry(cache, victim, mode="truncate")
            monkeypatch.setenv(
                "REPRO_CHAOS", ChaosConfig(crash_rate=0.3, seed=11).env_value()
            )
            chaotic = str(run_figure14(bench))
        assert chaotic == clean
        assert cache.quarantined == 1


class TestCacheSelfHealing:
    def test_corrupt_entry_quarantined_and_recomputed(self, tmp_path):
        spec = get_kernel("gcc")
        cache = RunCache(tmp_path)
        first = Workbench(instructions=INSTRUCTIONS, benchmarks=[spec], cache=cache)
        original = first.run(spec, first.clustered(2), "l")
        victim = first.job(spec, first.clustered(2), "l")
        path = corrupt_cache_entry(cache, victim, mode="garble")

        fresh_cache = RunCache(tmp_path)
        fresh = Workbench(
            instructions=INSTRUCTIONS, benchmarks=[spec], cache=fresh_cache
        )
        with pytest.warns(RuntimeWarning, match="quarantined"):
            recomputed = fresh.run(spec, fresh.clustered(2), "l")
        assert results_identical(recomputed, original)
        assert fresh.simulations_run == 1
        assert fresh_cache.quarantined == 1
        assert fresh_cache.stats()["quarantined"] == 1
        assert path.with_name(path.name + ".corrupt").exists()
        # The recomputation healed the cache: next load is a clean hit.
        healed = RunCache(tmp_path)
        assert healed.load(victim) is not None
        assert healed.quarantined == 0

    def test_quarantine_warns_only_once_per_cache(self, tmp_path):
        import warnings as warnings_module

        spec = get_kernel("gcc")
        cache = RunCache(tmp_path)
        bench = Workbench(instructions=INSTRUCTIONS, benchmarks=[spec], cache=cache)
        jobs = [bench.job(spec, bench.clustered(n), "dependence") for n in (2, 4)]
        for job in jobs:
            bench.run(spec, job.config, "dependence")
            corrupt_cache_entry(cache, job, mode="truncate")
        fresh = RunCache(tmp_path)
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            for job in jobs:
                assert fresh.load(job) is None
        assert fresh.quarantined == 2
        assert sum("quarantined" in str(w.message) for w in caught) == 1

    def test_store_leaves_no_tmp_files(self, tmp_path):
        spec = get_kernel("gcc")
        cache = RunCache(tmp_path)
        bench = Workbench(instructions=INSTRUCTIONS, benchmarks=[spec], cache=cache)
        bench.run(spec, bench.clustered(2), "l")
        leftovers = [p for p in tmp_path.rglob("*") if ".tmp-" in p.name]
        assert leftovers == []


def _mini_spec():
    return ExperimentSpec.from_dict(
        {
            "name": "chaos_mini",
            "workloads": [{"kernel": "gcc"}, {"kernel": "mcf"}],
            "sweeps": [
                {"machines": [{"clusters": 2}, {"clusters": 4}], "policies": ["l"]}
            ],
        }
    )


class TestSweepTablesAndManifest:
    def test_failed_jobs_render_cells_not_exceptions(self, tmp_path):
        spec = _mini_spec()
        install(
            lambda job, attempt: "error" if job.kernel == "mcf" else None
        )
        bench = make_bench(execution=ExecutionPolicy(max_retries=1))
        figure = run_spec(bench, spec)
        text = str(figure)
        assert "FAILED(injected)" in text
        assert "gcc" in text
        assert any("2 run(s) failed" in note for note in figure.notes)
        # gcc rows still carry numbers.
        gcc_rows = [r for r in figure.rows if r[0] == "gcc"]
        assert all(isinstance(r[3], int) for r in gcc_rows)

    def test_spec_execution_overrides_and_restores_bench_policy(self):
        spec = ExperimentSpec.from_dict(
            {
                "name": "chaos_exec",
                "execution": {"max_retries": 0},
                "workloads": [{"kernel": "gcc"}],
                "sweeps": [{"machines": [{"clusters": 2}], "policies": ["l"]}],
            }
        )
        install(fault_on_attempts("error", {1}))
        bench = make_bench(execution=ExecutionPolicy(max_retries=3))
        figure = run_spec(bench, spec)
        # max_retries=0 from the spec: the single fault is fatal ...
        assert "FAILED(injected)" in str(figure)
        # ... and the workbench's own policy is restored afterwards.
        assert bench.execution.max_retries == 3

    def test_interrupted_sweep_resumes_unfinished_jobs_only(self, tmp_path):
        spec = _mini_spec()
        cache = RunCache(tmp_path / "cache")
        manifest_dir = default_manifest_dir(cache.root)
        bench = make_bench(cache=cache)
        jobs = spec.jobs(bench)
        assert len(jobs) == 4

        # Fault-free reference table.
        reference = run_spec(make_bench(), spec)

        # Interrupt the sweep after two settled jobs.
        interrupted = set()

        def interrupt_hook(job, attempt):
            if len(interrupted) >= 2:
                raise KeyboardInterrupt
            interrupted.add(job_key(job))
            return None

        install(interrupt_hook)
        manifest = SweepManifest.open(manifest_dir, spec_hash(spec), spec.name)
        with pytest.raises(KeyboardInterrupt):
            run_spec(bench, spec, manifest=manifest)
        uninstall()
        assert bench.simulations_run == 2
        assert cache.stores == 2  # flushed before the interrupt propagated

        # Resume with a fresh workbench: only the two unfinished jobs run.
        resumed_manifest = SweepManifest.open(
            manifest_dir, spec_hash(spec), spec.name
        )
        assert len(resumed_manifest.resumed) == 2
        bench2 = make_bench(cache=RunCache(tmp_path / "cache"))
        figure = run_spec(bench2, spec, manifest=resumed_manifest)
        assert bench2.simulations_run == 2
        assert figure.rows == reference.rows
        assert any("resumed: 2 of 4" in note for note in figure.notes)
        assert resumed_manifest.summary() == {
            "jobs": 4,
            "completed": 4,
            "failed": 0,
            "resumed": 2,
        }

    def test_manifest_records_failures_and_corruption_is_quarantined(
        self, tmp_path
    ):
        spec = _mini_spec()
        cache = RunCache(tmp_path / "cache")
        manifest_dir = default_manifest_dir(cache.root)
        install(lambda job, attempt: "error" if job.kernel == "mcf" else None)
        bench = make_bench(cache=cache, execution=ExecutionPolicy(max_retries=0))
        manifest = SweepManifest.open(manifest_dir, spec_hash(spec), spec.name)
        run_spec(bench, spec, manifest=manifest)
        assert manifest.summary()["failed"] == 2
        uninstall()

        # A corrupted manifest is quarantined, not fatal; results still
        # resume from the run cache.
        manifest.path.write_text("{ not json")
        with pytest.warns(RuntimeWarning, match="manifest"):
            reopened = SweepManifest.open(manifest_dir, spec_hash(spec), spec.name)
        assert reopened.entries == {}
        bench2 = make_bench(cache=RunCache(tmp_path / "cache"))
        figure = run_spec(bench2, spec, manifest=reopened)
        assert bench2.simulations_run == 2  # only the previously-failed jobs
        assert "FAILED" not in str(figure)


class TestFaultScheduleIndependence:
    """Property: outcomes do not depend on the fault schedule, as long as
    every faulted job has a clean attempt left inside the retry budget."""

    BASELINE = None

    @classmethod
    def baseline(cls):
        if cls.BASELINE is None:
            bench = Workbench(
                instructions=300, benchmarks=[get_kernel("gcc"), get_kernel("mcf")]
            )
            jobs = [
                bench.job(get_kernel(k), bench.clustered(n), "l")
                for k in ("gcc", "mcf")
                for n in (2, 4)
            ]
            outcomes = execute_outcomes(jobs, workers=0)
            cls.BASELINE = (jobs, outcomes)
        return cls.BASELINE

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        schedule=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # job index
                st.integers(min_value=1, max_value=3),  # attempt
                st.sampled_from(["error", "garbage"]),
            ),
            max_size=8,
        )
    )
    def test_outcomes_independent_of_fault_schedule(self, schedule):
        jobs, baseline = self.baseline()
        faults = {}
        for index, attempt, action in schedule:
            faults[(jobs[index].kernel, jobs[index].config.name, attempt)] = action
        install(
            lambda job, attempt: faults.get(
                (job.kernel, job.config.name, attempt)
            )
        )
        try:
            outcomes = execute_outcomes(
                jobs, workers=0, policy=ExecutionPolicy(max_retries=3)
            )
        finally:
            uninstall()
        for clean, chaotic in zip(baseline, outcomes):
            assert chaotic.ok
            assert results_identical(clean.result, chaotic.result)
