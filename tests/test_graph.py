"""Tests for the explicit Fields dependence graph."""

import pytest

from repro.core.config import clustered_machine, monolithic_machine
from repro.core.rename import extract_dependences
from repro.core.simulator import ClusteredSimulator
from repro.criticality.graph import Edge, iter_edges, node_time, validate_timing
from repro.frontend.branch_predictor import (
    GshareBranchPredictor,
    annotate_mispredictions,
)
from repro.workloads.patterns import serial_chain
from repro.workloads.suite import get_kernel


@pytest.fixture(scope="module")
def kernel_run():
    spec = get_kernel("gcc")  # mispredict-heavy: exercises redirect edges
    trace = spec.generate(3000)
    deps = extract_dependences(trace)
    mis = frozenset(annotate_mispredictions(trace, GshareBranchPredictor()))
    config = clustered_machine(4)
    sim = ClusteredSimulator(config, max_cycles=1_000_000)
    return sim.run(trace, deps, mis), config


class TestEdgeEnumeration:
    def test_every_instruction_has_execute_and_commit_edges(self, kernel_run):
        result, config = kernel_run
        labels_by_dst = {}
        for edge in iter_edges(result.records, config):
            labels_by_dst.setdefault((edge.dst_kind, edge.dst_index), set()).add(
                edge.label
            )
        for rec in result.records:
            assert "execute" in labels_by_dst[("E", rec.index)]
            assert "commit" in labels_by_dst[("C", rec.index)]

    def test_redirect_edges_present_for_mispredicted_branches(self, kernel_run):
        result, config = kernel_run
        redirects = [
            e for e in iter_edges(result.records, config) if e.label == "redirect"
        ]
        assert redirects
        for edge in redirects:
            assert edge.src_index in result.mispredicted
            assert edge.weight == config.frontend.depth_to_dispatch

    def test_data_edges_match_dependences(self, kernel_run):
        result, config = kernel_run
        data = [
            e for e in iter_edges(result.records, config) if e.label == "data"
        ]
        for edge in data[:200]:
            consumer = result.records[edge.dst_index]
            assert edge.src_index in consumer.deps.all_deps

    def test_inorder_edges_are_zero_weight(self, kernel_run):
        result, config = kernel_run
        for edge in iter_edges(result.records, config):
            if edge.label in ("inorder_dispatch", "inorder_commit", "rob"):
                assert edge.weight == 0


class TestNodeTime:
    def test_each_kind(self, kernel_run):
        result, __ = kernel_run
        rec = result.records[10]
        assert node_time(rec, "D") == rec.dispatch_time
        assert node_time(rec, "E") == rec.complete_time
        assert node_time(rec, "C") == rec.commit_time

    def test_unknown_kind(self, kernel_run):
        result, __ = kernel_run
        with pytest.raises(ValueError):
            node_time(result.records[0], "X")


class TestValidation:
    def test_clean_run_validates(self, kernel_run):
        result, config = kernel_run
        assert validate_timing(result.records, config) == []

    def test_corrupted_timing_detected(self):
        sim = ClusteredSimulator(monolithic_machine(), max_cycles=10_000)
        result = sim.run(serial_chain(20), mispredicted=frozenset())
        # Break causality: pretend instruction 10 finished before it issued.
        result.records[10].complete_time = 0
        violations = validate_timing(result.records, result.config)
        assert violations
        assert any(isinstance(v, Edge) for v in violations)
