"""Determinism tests for parallel execution and the persistent run cache.

The correctness invariant of the whole parallel layer: fanning runs out
over worker processes, or loading them back from the on-disk cache, must
produce bit-identical :class:`SimulationResult`s to serial in-process
execution -- for every policy, including the warm-up-trained predictor
paths.
"""

import pytest

from repro.core.serialize import result_to_dict, results_identical
from repro.experiments.cache import RunCache, job_key
from repro.experiments.harness import (
    POLICY_NAMES,
    ParallelWorkbench,
    Workbench,
)
from repro.experiments.parallel import dedupe_jobs, execute_job, execute_jobs
from repro.experiments.runner import main
from repro.workloads.suite import get_kernel

INSTRUCTIONS = 800
KERNELS = ("gcc", "mcf")


@pytest.fixture(scope="module")
def serial_results():
    """Reference results: serial, in-process, per-policy on two kernels."""
    bench = Workbench(
        instructions=INSTRUCTIONS,
        benchmarks=[get_kernel(k) for k in KERNELS],
    )
    results = {}
    for kernel in KERNELS:
        spec = get_kernel(kernel)
        for policy in POLICY_NAMES:
            results[kernel, policy] = bench.run(spec, bench.clustered(2), policy)
    return results


class TestParallelMatchesSerial:
    def test_worker_pool_results_bit_identical(self, serial_results):
        bench = Workbench(
            instructions=INSTRUCTIONS,
            benchmarks=[get_kernel(k) for k in KERNELS],
            workers=2,
        )
        jobs = [
            bench.job(get_kernel(kernel), bench.clustered(2), policy)
            for kernel in KERNELS
            for policy in POLICY_NAMES
        ]
        executed = bench.prefetch(jobs)
        assert executed == len(jobs)
        for kernel in KERNELS:
            spec = get_kernel(kernel)
            for policy in POLICY_NAMES:
                parallel = bench.run(spec, bench.clustered(2), policy)
                assert results_identical(serial_results[kernel, policy], parallel), (
                    f"parallel result diverged for {kernel}/{policy}"
                )
        # All runs came from the prefetch; none re-executed serially.
        assert bench.simulations_run == len(jobs)

    def test_execute_jobs_preserves_job_order(self):
        bench = Workbench(instructions=400, benchmarks=[get_kernel("gcc")])
        jobs = [
            bench.job(get_kernel("gcc"), bench.clustered(n), "dependence")
            for n in (2, 4, 8)
        ]
        results = execute_jobs(jobs, workers=2)
        assert [r.config.num_clusters for r in results] == [2, 4, 8]

    def test_worker_regenerated_trace_matches_prepared(self):
        bench = Workbench(instructions=600, benchmarks=[get_kernel("vpr")])
        job = bench.job(get_kernel("vpr"), bench.clustered(4), "l")
        with_prepared = execute_job(job, bench.prepare(get_kernel("vpr")))
        regenerated = execute_job(job)
        assert results_identical(with_prepared, regenerated)

    def test_parallel_workbench_defaults_workers(self):
        bench = ParallelWorkbench(instructions=400)
        assert bench.workers >= 1


class TestRunCacheRoundTrip:
    def test_round_trip_reproduces_results_and_cpi(self, tmp_path, serial_results):
        cache = RunCache(tmp_path)
        bench = Workbench(
            instructions=INSTRUCTIONS, benchmarks=[get_kernel("gcc")]
        )
        for (kernel, policy), result in serial_results.items():
            job = bench.job(get_kernel(kernel), bench.clustered(2), policy)
            cache.store(job, result)
            loaded = cache.load(job)
            assert loaded is not None
            assert results_identical(result, loaded)
            assert loaded.cpi == result.cpi
            assert loaded.instructions == result.instructions
        assert cache.stores == len(serial_results)
        assert cache.hits == len(serial_results)

    def test_ilp_profile_survives_round_trip(self, tmp_path):
        cache = RunCache(tmp_path)
        bench = Workbench(instructions=600, benchmarks=[get_kernel("gcc")])
        spec = get_kernel("gcc")
        result = bench.run(spec, bench.clustered(8), "p", collect_ilp=True)
        job = bench.job(spec, bench.clustered(8), "p", collect_ilp=True)
        cache.store(job, result)
        loaded = cache.load(job)
        assert loaded.ilp_profile is not None
        assert loaded.ilp_profile.series() == result.ilp_profile.series()

    def test_missing_entry_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        bench = Workbench(instructions=500, benchmarks=[get_kernel("gcc")])
        job = bench.job(get_kernel("gcc"), bench.clustered(2), "dependence")
        assert cache.load(job) is None
        assert cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        bench = Workbench(instructions=500, benchmarks=[get_kernel("gcc")])
        job = bench.job(get_kernel("gcc"), bench.clustered(2), "dependence")
        path = cache.path_for(job_key(job))
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not gzip at all")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.load(job) is None
        assert cache.misses == 1


class TestPersistentCacheAcrossWorkbenches:
    def test_second_workbench_runs_zero_simulations(self, tmp_path):
        spec = get_kernel("gcc")
        first = Workbench(
            instructions=600, benchmarks=[spec], cache=RunCache(tmp_path)
        )
        a = first.run(spec, first.clustered(4), "l")
        assert first.simulations_run == 1

        cache = RunCache(tmp_path)
        second = Workbench(instructions=600, benchmarks=[spec], cache=cache)
        b = second.run(spec, second.clustered(4), "l")
        assert second.simulations_run == 0
        assert cache.hits == 1
        assert results_identical(a, b)

    def test_prefetch_hits_disk_cache(self, tmp_path):
        spec = get_kernel("gcc")
        cache = RunCache(tmp_path)
        first = Workbench(instructions=600, benchmarks=[spec], cache=cache)
        jobs = [first.job(spec, first.clustered(2), "dependence")]
        assert first.prefetch(jobs) == 1
        second = Workbench(
            instructions=600, benchmarks=[spec], cache=RunCache(tmp_path)
        )
        assert second.prefetch(jobs) == 0

    def test_dedupe_preserves_order(self):
        bench = Workbench(instructions=500, benchmarks=[get_kernel("gcc")])
        j1 = bench.job(get_kernel("gcc"), bench.clustered(2), "dependence")
        j2 = bench.job(get_kernel("gcc"), bench.clustered(4), "dependence")
        assert dedupe_jobs([j1, j2, j1, j2, j1]) == [j1, j2]


class TestWarmKeyRegression:
    """``warm`` must be part of every cache key (harness.py key-omission bug)."""

    def test_memory_cache_distinguishes_warm_from_cold(self):
        bench = Workbench(instructions=600, benchmarks=[get_kernel("gcc")])
        spec = get_kernel("gcc")
        warm = bench.run(spec, bench.clustered(4), "l", warm=True)
        cold = bench.run(spec, bench.clustered(4), "l", warm=False)
        assert warm is not cold
        assert bench.simulations_run == 2
        # Warm-up training changes the predictors, hence the timing.
        assert not results_identical(warm, cold)

    def test_disk_key_includes_warm(self):
        bench = Workbench(instructions=600, benchmarks=[get_kernel("gcc")])
        spec = get_kernel("gcc")
        warm_job = bench.job(spec, bench.clustered(4), "l", warm=True)
        cold_job = bench.job(spec, bench.clustered(4), "l", warm=False)
        assert job_key(warm_job) != job_key(cold_job)

    def test_cold_run_not_satisfied_by_cached_warm_run(self, tmp_path):
        spec = get_kernel("gcc")
        cache = RunCache(tmp_path)
        bench = Workbench(instructions=600, benchmarks=[spec], cache=cache)
        bench.run(spec, bench.clustered(4), "l", warm=True)
        fresh = Workbench(
            instructions=600, benchmarks=[spec], cache=RunCache(tmp_path)
        )
        fresh.run(spec, fresh.clustered(4), "l", warm=False)
        assert fresh.simulations_run == 1


class TestRunnerCli:
    def test_parallel_cached_invocations_identical_and_warm(self, capsys, tmp_path):
        args = [
            "figure14",
            "--instructions",
            "800",
            "--benchmarks",
            "gcc",
            "--workers",
            "2",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "simulated=11" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "simulated=0" in warm
        assert "cache hits=11" in warm

        def table(text):
            return [
                line for line in text.splitlines() if not line.startswith("[")
            ]

        assert table(cold) == table(warm)

    def test_no_cache_flag_disables_reporting(self, capsys, tmp_path):
        assert (
            main(
                [
                    "figure8",
                    "--instructions",
                    "600",
                    "--benchmarks",
                    "gcc",
                    "--no-cache",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "cache hits" not in out
        assert "simulated=1" in out


class TestSerializationOfResults:
    def test_to_dict_is_json_types_only(self, serial_results):
        import json

        payload = result_to_dict(serial_results["gcc", "p"])
        json.dumps(payload)  # raises on non-JSON types
