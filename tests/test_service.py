"""Service-grade battery for the ``repro serve`` job API.

Everything here drives a *real* server on an ephemeral port through
:class:`repro.api.Client` -- no handler mocking -- and pins the
service's core guarantees:

* an HTTP-submitted sweep is bit-identical to ``run_spec`` on a plain
  serial workbench;
* a duplicate submission is a pure cache hit (zero new simulations);
* overlapping submissions coalesce: each shared job key simulates
  exactly once (also locked order-invariantly by a hypothesis property
  over :func:`repro.service.plan_claims`);
* quota exhaustion surfaces as a 429 ``repro.service_error/1`` payload;
* the SSE journal replays after reconnect (``Last-Event-ID``);
* chaos-injected submissions converge bit-identical to fault-free runs;
* the stats endpoint reconciles with the shared workbench's
  ``exec_stats`` / ``simulations_run`` / cache counters;
* concurrent writers cannot corrupt a :class:`SweepManifest` journal;
* a SIGKILLed server restarted on the same cache dir completes the
  original experiment id bit-identically, re-simulating only the jobs
  its write-ahead store never saw settle;
* graceful drain sheds new submissions with a typed 503 and
  checkpoints in-flight sweeps for the next incarnation;
* an unreachable distributed backend trips the circuit breaker and the
  sweep degrades to the local pool instead of failing.
"""

from __future__ import annotations

import json
import threading
from dataclasses import replace
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.cache import job_key
from repro.experiments.harness import Workbench
from repro.experiments.manifest import SweepManifest
from repro.experiments.sweep import run_spec
from repro.service import (
    BackgroundServer,
    Client,
    SERVICE_ERROR_SCHEMA,
    ServiceError,
    TokenBucket,
    plan_claims,
    queue_key,
    validate_error,
)
from repro.service.scheduler import CoalescingRegistry
from repro.specs import ExperimentSpec, SpecError, spec_hash
from repro.testing import chaos
from repro.workloads.suite import get_kernel

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")


def make_spec(
    name="svc-sweep",
    kernels=("gzip",),
    clusters=(1,),
    policies=("l",),
    instructions=2000,
    execution=None,
):
    return ExperimentSpec.from_dict(
        {
            "name": name,
            "instructions": instructions,
            "workloads": [{"kernel": k} for k in kernels],
            "sweeps": [
                {
                    "machines": [{"clusters": c} for c in clusters],
                    "policies": list(policies),
                }
            ],
            **({"execution": execution} if execution else {}),
        }
    )


@pytest.fixture
def server(tmp_path):
    with BackgroundServer(workers=0, cache_dir=tmp_path / "cache") as srv:
        yield srv


# ---------------------------------------------------------------------------
# End-to-end round trip
# ---------------------------------------------------------------------------


class TestRoundTrip:
    def test_http_sweep_bit_identical_to_serial_run_spec(self, server, tmp_path):
        spec = make_spec(kernels=("gzip", "mcf"), clusters=(1, 2), policies=("l", "s"))
        client = Client(server.url)
        report = client.run(spec)

        bench = Workbench(workers=0)
        serial = run_spec(bench, spec)
        # JSON text, not dict equality: figures with averaged columns can
        # carry NaN cells, which never compare equal as floats.
        assert json.dumps(report["figure"], sort_keys=True) == json.dumps(
            serial.to_dict(), sort_keys=True
        )

        from repro.specs import policy_label

        serial_rows = {
            (job.kernel, job.config.name, policy_label(job.policy)): bench.result_for(job)
            for job in spec.jobs(bench)
        }
        assert len(report["runs"]) == len(spec.jobs(bench))
        for row in report["runs"]:
            result = serial_rows[(row["kernel"], row["config"], row["policy"])]
            assert row["cycles"] == result.cycles
            assert row["instructions"] == result.instructions
            assert row["cpi"] == result.cpi
        assert report["schema"] == "repro.run_report/1"

    def test_duplicate_submission_is_pure_cache_hit(self, server):
        spec = make_spec(kernels=("gzip",), clusters=(1, 2))
        client = Client(server.url)
        first = client.run(spec)
        executed = client.stats()["jobs"]["executed"]
        assert executed == 2

        second_sub = client.submit(spec)
        client.wait(second_sub["id"])
        second = client.result(second_sub["id"])
        stats = client.stats()
        assert stats["jobs"]["executed"] == executed  # zero new simulations
        assert stats["jobs"]["cached"] >= 2
        assert second["runs"] == first["runs"]
        assert second["totals"] == first["totals"]
        assert second["figure"] == first["figure"]

    def test_status_and_events_reflect_lifecycle(self, server):
        spec = make_spec()
        client = Client(server.url)
        sub = client.submit(spec)
        assert sub["status"] in ("queued", "running", "done")
        final = client.wait(sub["id"])
        assert final["status"] == "done"
        assert final["jobs"]["completed"] == final["jobs"]["total"] == 1
        assert final["jobs"]["failed"] == 0
        assert "manifest" in final  # journal summary rides on status

        events = list(client.events(sub["id"]))
        names = [e["event"] for e in events]
        assert names[0] == "status" and names[-1] == "done"
        assert names.count("job") == 1
        assert [e["id"] for e in events] == list(range(1, len(events) + 1))


# ---------------------------------------------------------------------------
# Coalescing
# ---------------------------------------------------------------------------


class TestCoalescing:
    def test_overlapping_sweeps_simulate_shared_jobs_once(self, server):
        spec_a = make_spec(name="sweep-a", kernels=("gzip", "mcf"))
        spec_b = make_spec(name="sweep-b", kernels=("mcf", "gcc"))
        client = Client(server.url)

        bench = Workbench(workers=0)
        union = {job_key(j) for j in spec_a.jobs(bench)} | {
            job_key(j) for j in spec_b.jobs(bench)
        }
        assert len(union) == 3  # mcf/1/l shared

        sub_a = client.submit(spec_a)
        sub_b = client.submit(spec_b)  # while A is queued/running
        # B must not claim anything A owns: its overlap either coalesces
        # onto A's in-flight claim or (if A already finished it) comes
        # back from the cache -- never a second execution.
        assert sub_b["jobs"]["execute"] <= 1
        client.wait(sub_a["id"])
        final_b = client.wait(sub_b["id"])
        assert final_b["jobs"]["completed"] == 2

        stats = client.stats()
        assert stats["jobs"]["executed"] == len(union)  # exactly once each
        report_a = client.result(sub_a["id"])
        report_b = client.result(sub_b["id"])
        rows_a = {r["kernel"]: r for r in report_a["runs"]}
        rows_b = {r["kernel"]: r for r in report_b["runs"]}
        assert rows_a["mcf"] == rows_b["mcf"]  # fan-out delivered the same result

    def test_registry_exactly_once_and_fan_out(self):
        registry = CoalescingRegistry()
        first = registry.claim("a", ["k1", "k2", "k1"])  # in-submission dupes collapse
        assert first.execute == ("k1", "k2")
        second = registry.claim("b", ["k2", "k3"])
        assert second.coalesced == ("k2",) and second.execute == ("k3",)
        assert registry.settle("k2") == ["a", "b"]  # owner first
        assert registry.settle("k2") == []  # settled keys leave the registry
        third = registry.claim("c", ["k2"], is_cached=lambda k: True)
        assert third.cached == ("k2",)

    def test_registry_forfeit_settles_subscribed_flights(self):
        # A forfeited flight must leave the registry *with* its
        # subscribers reported, never be re-owned: the subscribers
        # coalesced instead of claiming, so no surviving submission has
        # the key in its run set and a re-owned flight would sit in the
        # registry forever (stranding the subscriber and swallowing
        # every future submission of the key).
        registry = CoalescingRegistry()
        registry.claim("a", ["k1", "k2"])
        registry.claim("b", ["k1"])
        forfeited = {f.key: f.parties() for f in registry.forfeit("a")}
        assert forfeited == {"k1": ["a", "b"], "k2": ["a"]}
        assert registry.in_flight() == 0  # nothing stranded
        assert registry.claim("c", ["k1"]).execute == ("k1",)  # retryable

    def test_priority_queue_ordering(self):
        entries = sorted(
            [queue_key(0, 1), queue_key(5, 2), queue_key(5, 3), queue_key(-1, 4)]
        )
        assert entries == [(-5, 2), (-5, 3), (0, 1), (1, 4)]


KEYS = st.lists(
    st.sampled_from([f"k{i}" for i in range(8)]), min_size=0, max_size=8
)
SUBMISSIONS = st.lists(KEYS, min_size=0, max_size=6)


class TestCoalescingProperties:
    @settings(max_examples=200)
    @given(submissions=SUBMISSIONS, cached=st.sets(st.sampled_from([f"k{i}" for i in range(8)])))
    def test_claims_partition_each_submission(self, submissions, cached):
        claims = plan_claims(submissions, cached)
        executed_union: set[str] = set()
        for keys, claim in zip(submissions, claims):
            unique = list(dict.fromkeys(keys))
            parts = [*claim.execute, *claim.coalesced, *claim.cached]
            assert sorted(parts) == sorted(unique)  # a partition, no dupes
            assert set(claim.cached) <= cached
            # coalesced keys were claimed by an earlier submission
            assert set(claim.coalesced) <= executed_union
            # exactly-once: no key is executed twice across submissions
            assert not (set(claim.execute) & executed_union)
            executed_union |= set(claim.execute)
        all_keys = set().union(*map(set, submissions)) if submissions else set()
        assert executed_union == all_keys - cached

    @settings(max_examples=100)
    @given(
        submissions=SUBMISSIONS,
        cached=st.sets(st.sampled_from([f"k{i}" for i in range(8)])),
        seed=st.randoms(use_true_random=False),
    )
    def test_executed_set_is_order_invariant(self, submissions, cached, seed):
        baseline = plan_claims(submissions, cached)
        shuffled = list(submissions)
        seed.shuffle(shuffled)
        permuted = plan_claims(shuffled, cached)

        def executed(claims):
            return set().union(*(set(c.execute) for c in claims)) if claims else set()

        assert executed(baseline) == executed(permuted)
        assert sum(len(c.execute) for c in baseline) == sum(
            len(c.execute) for c in permuted
        )


# ---------------------------------------------------------------------------
# Quotas and typed errors
# ---------------------------------------------------------------------------


class TestQuota:
    def test_quota_exhaustion_is_a_429_typed_error(self, tmp_path):
        with BackgroundServer(
            workers=0, cache_dir=tmp_path / "cache", quota=3
        ) as server:
            client = Client(server.url, client_id="alice")
            spec = make_spec(clusters=(1, 2))  # cost 2
            first = client.submit(spec)
            client.wait(first["id"])
            with pytest.raises(ServiceError) as excinfo:
                client.submit(spec)  # cost 2 > 1 remaining
            err = excinfo.value
            assert err.code == "quota_exhausted"
            assert err.status == 429
            assert err.detail["client"] == "alice"
            assert err.detail["cost"] == 2
            assert err.detail["capacity"] == 3
            validate_error(err.to_payload())

            # quotas are per-client: another tenant still gets through
            other = Client(server.url, client_id="bob")
            sub = other.submit(spec)
            assert other.wait(sub["id"])["status"] == "done"
            snapshot = other.stats()["quota"]
            assert set(snapshot) == {"alice", "bob"}

    def test_token_bucket_refills_lazily(self):
        now = [0.0]
        bucket = TokenBucket(4, refill_rate=2.0, clock=lambda: now[0])
        assert bucket.try_consume(4)
        assert not bucket.try_consume(1)
        assert bucket.retry_after(2) == pytest.approx(1.0)
        now[0] += 1.0
        assert bucket.available() == pytest.approx(2.0)
        assert bucket.try_consume(2)
        assert bucket.retry_after(5) is None  # can never afford it

    def test_http_error_payloads_are_typed(self, server):
        client = Client(server.url)
        for do, code, status in [
            (lambda: client._request("POST", "/v1/experiments", headers={"Content-Type": "application/json"}), "invalid_json", 400),
            (lambda: client.submit({"name": "x"}), "invalid_spec", 400),
            (lambda: client.status("exp-999999"), "not_found", 404),
            (lambda: client._request("GET", "/v1/experiments"), "method_not_allowed", 405),
            (lambda: client._request("POST", "/v1/stats"), "method_not_allowed", 405),
            (lambda: client._request("GET", "/v1/nope"), "not_found", 404),
        ]:
            with pytest.raises(ServiceError) as excinfo:
                do()
            assert excinfo.value.code == code
            assert excinfo.value.status == status
            payload = excinfo.value.to_payload()
            assert payload["schema"] == SERVICE_ERROR_SCHEMA
            validate_error(payload)

    def test_negative_content_length_is_a_typed_400(self, server):
        # http.client never sends a negative Content-Length, so speak raw
        # bytes: the parser must reject it as bad_request, not blow up in
        # readexactly() and drop the connection without a response.
        import socket

        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            sock.sendall(
                b"POST /v1/experiments HTTP/1.1\r\n"
                b"Host: test\r\nContent-Length: -5\r\n\r\n"
            )
            raw = b""
            while chunk := sock.recv(65536):  # server closes after responding
                raw += chunk
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.split(b"\r\n", 1)[0] == b"HTTP/1.1 400 Bad Request"
        payload = json.loads(body.decode("utf-8"))
        assert payload["error"] == "bad_request"
        validate_error(payload)

    def test_result_before_completion_conflicts(self, server):
        spec = make_spec(kernels=("gzip", "mcf"), instructions=30_000)
        client = Client(server.url)
        sub = client.submit(spec)
        try:
            client.result(sub["id"])
        except ServiceError as err:
            assert err.code == "conflict"
            assert err.status == 409
        else:
            # Only acceptable if the sweep genuinely finished already.
            assert client.status(sub["id"])["status"] == "done"
        client.wait(sub["id"])


class TestClientUrl:
    def test_client_parses_ipv6_and_schemeless_urls(self):
        # [::1] used to partition on the first ':', yielding host "[".
        for url, host, port in [
            ("http://[::1]:8035", "::1", 8035),
            ("http://127.0.0.1:9000", "127.0.0.1", 9000),
            ("127.0.0.1:9000", "127.0.0.1", 9000),
            ("localhost:9000", "localhost", 9000),
            ("http://localhost", "localhost", 80),
        ]:
            client = Client(url)
            assert (client.host, client.port) == (host, port)

    def test_client_rejects_non_http_schemes(self):
        with pytest.raises(ValueError):
            Client("https://localhost:1")


# ---------------------------------------------------------------------------
# SSE replay
# ---------------------------------------------------------------------------


class TestEvents:
    def test_sse_replays_journal_after_reconnect(self, server):
        spec = make_spec(kernels=("gzip", "mcf"))
        client = Client(server.url)
        sub = client.submit(spec)
        client.wait(sub["id"])

        full = list(client.events(sub["id"]))
        assert len(full) >= 4  # status, 2 jobs, done
        # Drop the connection after two events, reconnect with
        # Last-Event-ID: the replayed suffix must match exactly.
        seen = []
        for event in client.events(sub["id"]):
            seen.append(event)
            if len(seen) == 2:
                break
        resumed = list(client.events(sub["id"], after=seen[-1]["id"]))
        assert seen + resumed == full

    def test_sse_replay_from_scratch_is_idempotent(self, server):
        spec = make_spec()
        client = Client(server.url)
        sub = client.submit(spec)
        client.wait(sub["id"])
        assert list(client.events(sub["id"])) == list(client.events(sub["id"]))


# ---------------------------------------------------------------------------
# Chaos
# ---------------------------------------------------------------------------


class TestChaos:
    def test_chaos_injected_submission_converges_bit_identical(self, server):
        spec = make_spec(kernels=("gzip", "mcf"))
        client = Client(server.url)
        config = chaos.ChaosConfig(
            rules=(chaos.FaultRule(mode="error", attempts=(1,)),)
        )
        chaos.install(config)
        try:
            report = client.run(spec)
        finally:
            chaos.uninstall()
        final = client.stats()
        # every job failed its first attempt and was retried
        assert final["executor"]["retries"] >= 2
        assert final["executor"]["failed"] == 0

        bench = Workbench(workers=0)
        serial = run_spec(bench, spec)
        # JSON text, not dict equality: figures with averaged columns can
        # carry NaN cells, which never compare equal as floats.
        assert json.dumps(report["figure"], sort_keys=True) == json.dumps(
            serial.to_dict(), sort_keys=True
        )

    def test_failed_sweep_fails_over_coalesced_subscribers(self, server):
        # A claims gzip+mcf+gcc: gzip hangs long enough for B to submit
        # and coalesce onto mcf+gcc, then mcf errors under fail_fast, so
        # A's sweep raises RunFailureError with gcc never executed.  The
        # forfeited flights must settle B as failed -- before the fix,
        # release() re-owned them to B (which has no execution path for
        # them), leaving B "running" forever and every later submission
        # of those keys coalescing onto the dead flight.
        spec_a = make_spec(
            name="doomed",
            kernels=("gzip", "mcf", "gcc"),
            execution={"fail_fast": True, "max_retries": 0},
        )
        spec_b = make_spec(name="rider", kernels=("mcf", "gcc"))
        client = Client(server.url)
        chaos.install(
            chaos.ChaosConfig(
                rules=(
                    chaos.FaultRule(mode="hang", match={"kernel": "gzip"}),
                    chaos.FaultRule(mode="error", match={"kernel": "mcf"}),
                ),
                hang_seconds=2.0,
            )
        )
        try:
            sub_a = client.submit(spec_a)
            sub_b = client.submit(spec_b)  # lands inside gzip's hang
            assert sub_b["jobs"]["coalesced"] == 2  # riding A's flights
            final_a = client.wait(sub_a["id"])
            final_b = client.wait(sub_b["id"], timeout=10.0)
        finally:
            chaos.uninstall()
        assert final_a["status"] == "error"
        # B terminates: per-job failures are results, so it ends "done"
        # with its coalesced cells marked failed, not stuck "running".
        assert final_b["status"] == "done"
        assert final_b["jobs"]["failed"] == 2
        stats = client.stats()
        assert stats["jobs"]["in_flight"] == 0  # registry fully drained
        # The forfeited keys are retryable: a fresh fault-free submission
        # re-claims and executes them instead of coalescing onto a ghost.
        retry = client.submit(spec_b)
        assert retry["jobs"]["coalesced"] == 0
        final_retry = client.wait(retry["id"])
        assert final_retry["status"] == "done"
        assert final_retry["jobs"]["failed"] == 0

    def test_service_failures_settle_as_failed_jobs_not_500s(self, server):
        spec = make_spec()
        client = Client(server.url)
        # error on every attempt: retries exhaust, job fails, experiment
        # still completes with failed=1 and the report carries the failure
        chaos.install(chaos.ChaosConfig(rules=(chaos.FaultRule(mode="error"),)))
        try:
            sub = client.submit(spec)
            final = client.wait(sub["id"])
        finally:
            chaos.uninstall()
        assert final["status"] == "done"
        assert final["jobs"]["failed"] == 1
        report = client.result(sub["id"])
        assert report["totals"]["failed"] == 1
        assert report["failures"][0]["kind"] == "injected"


# ---------------------------------------------------------------------------
# Stats reconciliation
# ---------------------------------------------------------------------------


class TestStats:
    def test_stats_reconcile_with_workbench_counters(self, server):
        spec = make_spec(kernels=("gzip", "mcf"), clusters=(1, 2))
        client = Client(server.url)
        client.run(spec)
        client.run(spec)  # duplicate: all cached

        stats = client.stats()
        bench = server.bench
        assert stats["executor"] == bench.exec_stats.to_dict()
        assert stats["simulations_run"] == bench.simulations_run
        # No failures and no retries here, so every execution the service
        # claims must equal what the bench actually simulated -- this is
        # the counter-drift regression (the batched group path used to
        # skip exec_stats.executed).
        assert stats["jobs"]["executed"] == stats["simulations_run"] == 4
        assert stats["cache"] == server.cache.stats()
        assert stats["cache"]["stores"] == 4
        assert stats["experiments"]["submitted"] == 2
        assert stats["experiments"]["completed"] == 2
        assert stats["experiments"]["errors"] == 0
        assert stats["jobs"]["in_flight"] == 0

    def test_batched_group_path_counts_executed(self, tmp_path):
        # Direct regression for the drift: grouped batched prefetch must
        # tick exec_stats.executed exactly like the per-job executor.
        bench = Workbench(instructions=2000, workers=0)
        jobs = [
            bench.job(get_kernel("gzip"), bench.clustered(c), "l") for c in (1, 2, 4)
        ]
        ran = bench.prefetch(jobs)
        assert ran == 3
        assert bench.exec_stats.executed == bench.simulations_run == 3


# ---------------------------------------------------------------------------
# Workbench memory-key regression (service shares one bench across specs)
# ---------------------------------------------------------------------------


class TestMemoryKey:
    def test_memory_cache_keys_on_instructions_and_seed(self):
        bench = Workbench(instructions=2000, workers=0)
        base = bench.job(get_kernel("gzip"), bench.clustered(1), "l")
        variants = [
            base,
            replace(base, instructions=1000),
            replace(base, seed=7),
        ]
        bench.prefetch(variants)
        for job in variants:
            result = bench.result_for(job)
            assert result is not None
            assert result.instructions == job.instructions
        # the old field-subset key collapsed all three to one simulation
        assert bench.simulations_run == 3


# ---------------------------------------------------------------------------
# Manifest concurrency
# ---------------------------------------------------------------------------


def _fake_outcome(n: int):
    return SimpleNamespace(
        ok=True,
        job=SimpleNamespace(kernel=f"k{n}", config=SimpleNamespace(name="m")),
        attempts=1,
        elapsed=0.01,
        failure=None,
    )


class TestManifestConcurrency:
    def test_concurrent_writers_never_corrupt_the_journal(self, tmp_path):
        manifest = SweepManifest.open(tmp_path, "deadbeef" * 8, "concurrent")
        per_thread, threads = 50, 4
        barrier = threading.Barrier(threads)
        errors: list[BaseException] = []

        def writer(tid: int) -> None:
            try:
                barrier.wait()
                for i in range(per_thread):
                    key = f"t{tid}-{i}"
                    manifest.record(key, _fake_outcome(i))
                    manifest.save()
            except BaseException as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        workers = [threading.Thread(target=writer, args=(t,)) for t in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert not errors
        assert not list(tmp_path.glob("*.corrupt"))
        assert not list(tmp_path.glob("*.tmp-*"))  # no orphaned temp files

        reloaded = SweepManifest.open(tmp_path, "deadbeef" * 8, "concurrent")
        assert len(reloaded.entries) == per_thread * threads
        assert reloaded.summary()["completed"] == per_thread * threads

    def test_two_manifest_instances_share_a_path_safely(self, tmp_path):
        # Cross-instance (cross-process analogue): every published file
        # version is complete and parseable even while both save in a loop.
        a = SweepManifest.open(tmp_path, "ab" * 32, "left")
        b = SweepManifest.open(tmp_path, "ab" * 32, "right")
        stop = threading.Event()
        errors: list[BaseException] = []

        def churn(manifest: SweepManifest, tag: str) -> None:
            try:
                i = 0
                while not stop.is_set() and i < 100:
                    manifest.record(f"{tag}-{i}", _fake_outcome(i))
                    manifest.save()
                    i += 1
            except BaseException as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [
            threading.Thread(target=churn, args=(a, "a")),
            threading.Thread(target=churn, args=(b, "b")),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        assert not errors
        data = json.loads((tmp_path / ("ab" * 32 + ".json")).read_text())
        assert data["schema"] == "repro.sweep_manifest/1"  # complete document


# ---------------------------------------------------------------------------
# Spec-layer service knobs
# ---------------------------------------------------------------------------


class TestSpecPriority:
    def test_priority_accepted_and_reported(self, server):
        spec = make_spec(execution={"priority": 5})
        client = Client(server.url)
        sub = client.submit(spec)
        assert sub["priority"] == 5
        client.wait(sub["id"])

    def test_priority_does_not_perturb_policy_or_hash(self):
        plain = make_spec()
        urgent = make_spec(execution={"priority": 9, "max_retries": 0})
        assert spec_hash(plain) == spec_hash(urgent)  # execution excluded
        from repro.experiments.outcomes import ExecutionPolicy

        base = ExecutionPolicy()
        derived = urgent.execution_policy(base)
        assert derived.max_retries == 0  # policy keys applied
        assert not hasattr(derived, "priority")  # service key filtered out

    def test_priority_must_be_an_integer(self):
        with pytest.raises(SpecError):
            make_spec(execution={"priority": "high"})


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCli:
    def test_serve_subcommand_help(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for flag in (
            "--port",
            "--workers",
            "--cache-dir",
            "--quota",
            "--no-durable",
            "--max-queue-depth",
            "--max-client-inflight",
            "--breaker-threshold",
            "--breaker-cooldown",
            "--breaker-fallback",
        ):
            assert flag in out


# ---------------------------------------------------------------------------
# Durable store (unit)
# ---------------------------------------------------------------------------


class TestDurableStore:
    def test_journal_round_trips_through_replay(self, tmp_path):
        from repro.service import DurableStore

        store = DurableStore(tmp_path / "service")
        spec = make_spec()
        store.record_submit("exp-000001", "alice", 2, 123.0, spec.to_dict())
        store.record_settle("exp-000001", "k1", True, "run")
        store.record_settle(
            "exp-000001", "k2", False, "run", failure={"kind": "error"}
        )
        store.record_settle("exp-000001", "k1", True, "cache")  # dupe: first wins
        store.record_quota({"alice": 1.5})
        store.record_terminal("exp-000001", "done", 124.0)
        store.close()

        replayed = DurableStore(tmp_path / "service").replay()
        assert replayed.quarantined == 0
        assert replayed.quota == {"alice": 1.5}
        [exp] = replayed.experiments
        assert (exp.id, exp.client, exp.priority, exp.created) == (
            "exp-000001", "alice", 2, 123.0,
        )
        assert exp.spec_payload == spec.to_dict()
        assert exp.settles["k1"] == {"ok": True, "source": "run", "failure": None}
        assert exp.settles["k2"]["failure"] == {"kind": "error"}
        assert exp.terminal["status"] == "done" and exp.status == "done"

    def test_corrupt_and_truncated_lines_are_quarantined(self, tmp_path):
        from repro.service import DurableStore

        store = DurableStore(tmp_path / "service")
        store.record_submit("exp-000001", "a", 0, 1.0, make_spec().to_dict())
        store.record_settle("exp-000001", "k1", True, "run")
        store.close()
        with open(store.journal_path, "a", encoding="utf-8") as fh:
            fh.write("this is not json\n")
            fh.write('{"type": "settle", "id": "exp-000001"\n')  # torn tail

        fresh = DurableStore(tmp_path / "service")
        replayed = fresh.replay()
        assert replayed.quarantined == 2
        assert fresh.quarantine_path.exists()
        assert len(fresh.quarantine_path.read_text().splitlines()) == 2
        [exp] = replayed.experiments  # intact prefix fully recovered
        assert exp.settles == {"k1": {"ok": True, "source": "run", "failure": None}}

    def test_evict_drops_experiment_and_events(self, tmp_path):
        from repro.service import DurableStore

        store = DurableStore(tmp_path / "service")
        store.record_submit("exp-000001", "a", 0, 1.0, make_spec().to_dict())
        store.append_event("exp-000001", {"id": 1, "event": "status", "data": {}})
        assert store.event_count("exp-000001") == 1
        store.record_evict("exp-000001")
        assert not store.events_path("exp-000001").exists()
        assert store.replay().experiments == []

    def test_compact_collapses_and_sweeps_orphans(self, tmp_path):
        from repro.service import DurableStore

        store = DurableStore(tmp_path / "service")
        spec = make_spec()
        store.record_submit("exp-000001", "a", 0, 1.0, spec.to_dict())
        store.record_submit("exp-000002", "a", 0, 2.0, spec.to_dict())
        store.record_settle("exp-000001", "k1", True, "run")
        store.record_terminal("exp-000001", "done", 3.0)
        store.record_evict("exp-000002")
        store.record_quota({"a": 2.0})
        store.record_quota({"a": 1.0})  # last snapshot wins
        store.append_event("exp-000001", {"id": 1, "event": "status", "data": {}})
        store.append_event("exp-gone", {"id": 1, "event": "status", "data": {}})
        assert store.compact() == 1
        assert not list(store.root.glob("*.tmp-*"))
        assert not store.events_path("exp-gone").exists()
        assert store.events_path("exp-000001").exists()

        replayed = DurableStore(tmp_path / "service").replay()
        [exp] = replayed.experiments
        assert exp.id == "exp-000001" and exp.status == "done"
        assert replayed.quota == {"a": 1.0}
        # compacted journal is minimal: submit + settle + terminal + quota
        lines = store.journal_path.read_text().splitlines()
        assert len(lines) == 4

    def test_event_spill_reads_back_in_order(self, tmp_path):
        from repro.service import DurableStore

        store = DurableStore(tmp_path / "service")
        for i in range(1, 5):
            store.append_event("exp-000001", {"id": i, "event": "job", "data": {"n": i}})
        events = store.load_events("exp-000001")
        assert [e["id"] for e in events] == [1, 2, 3, 4]


# ---------------------------------------------------------------------------
# Recovery on boot
# ---------------------------------------------------------------------------


class TestRecovery:
    def test_restart_serves_finished_experiment_without_resimulating(self, tmp_path):
        cache_dir = tmp_path / "cache"
        spec = make_spec(kernels=("gzip", "mcf"))
        with BackgroundServer(workers=0, cache_dir=cache_dir) as first:
            client = Client(first.url)
            sub = client.submit(spec)
            client.wait(sub["id"])
            before_report = client.result(sub["id"])
            before_events = list(client.events(sub["id"]))

        with BackgroundServer(workers=0, cache_dir=cache_dir) as second:
            client = Client(second.url)
            status = client.status(sub["id"])  # original id survives
            assert status["status"] == "done"
            assert client.result(sub["id"]) == before_report
            assert list(client.events(sub["id"])) == before_events
            stats = client.stats()
            assert stats["durability"]["recovered"]["experiments"] == 1
            assert second.bench.simulations_run == 0  # nothing re-ran

    def test_mid_sweep_crash_recovery_is_bit_identical(self, tmp_path):
        # Forge the exact on-disk state a kill -9 mid-sweep leaves behind:
        # the submission journaled, one of three jobs settled (and its
        # result in the run cache), no terminal entry.
        from repro.experiments.cache import RunCache
        from repro.service import DurableStore, default_store_dir

        cache_dir = tmp_path / "cache"
        spec = make_spec(kernels=("gzip", "mcf", "gcc"))
        bench = Workbench(workers=0, cache=RunCache(cache_dir))
        jobs = spec.jobs(bench)
        bench.prefetch([jobs[0]])  # pre-crash: first job finished + cached

        store = DurableStore(default_store_dir(cache_dir))
        store.record_submit("exp-000007", "alice", 0, 100.0, spec.to_dict())
        store.record_settle("exp-000007", job_key(jobs[0]), True, "run")
        store.close()

        with BackgroundServer(workers=0, cache_dir=cache_dir) as server:
            client = Client(server.url)
            final = client.wait("exp-000007")
            assert final["status"] == "done"
            assert final["jobs"]["total"] == 3 and final["jobs"]["failed"] == 0
            report = client.result("exp-000007")
            # only the two residual jobs simulate; the settled one rides
            # the cache
            assert server.bench.simulations_run == 2
            stats = client.stats()
            assert stats["durability"]["recovered"] == {
                "experiments": 1, "requeued_jobs": 2,
            }
            # recovered ids stay authoritative: the next submission does
            # not collide
            fresh = client.submit(make_spec(name="after", kernels=("gcc",)))
            assert fresh["id"] == "exp-000008"

        serial = run_spec(Workbench(workers=0), spec)
        assert json.dumps(report["figure"], sort_keys=True) == json.dumps(
            serial.to_dict(), sort_keys=True
        )

    def test_submit_only_journal_reruns_everything(self, tmp_path):
        # Crash before any settle: recovery owes the whole sweep.
        from repro.service import DurableStore, default_store_dir

        cache_dir = tmp_path / "cache"
        spec = make_spec(kernels=("gzip", "mcf"))
        store = DurableStore(default_store_dir(cache_dir))
        store.record_submit("exp-000001", "a", 0, 1.0, spec.to_dict())
        store.close()

        with BackgroundServer(workers=0, cache_dir=cache_dir) as server:
            client = Client(server.url)
            assert client.wait("exp-000001")["status"] == "done"
            assert server.bench.simulations_run == 2

    def test_corrupted_settle_is_quarantined_and_recomputed(self, tmp_path):
        from repro.service import DurableStore, default_store_dir

        cache_dir = tmp_path / "cache"
        spec = make_spec(kernels=("gzip", "mcf"))
        store = DurableStore(default_store_dir(cache_dir))
        store.record_submit("exp-000001", "a", 0, 1.0, spec.to_dict())
        store.close()
        with open(store.journal_path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "settle", "id": "exp-000001", "key": "k1"')  # torn

        with BackgroundServer(workers=0, cache_dir=cache_dir) as server:
            client = Client(server.url)
            assert client.wait("exp-000001")["status"] == "done"
            assert server.bench.simulations_run == 2  # damaged settle recomputed
            assert server.store.quarantine_path.exists()
            assert client.stats()["durability"]["store"]["quarantined"] == 1

    def test_sse_last_event_id_replays_across_restart(self, tmp_path):
        cache_dir = tmp_path / "cache"
        spec = make_spec(kernels=("gzip", "mcf"))
        with BackgroundServer(workers=0, cache_dir=cache_dir) as first:
            client = Client(first.url)
            sub = client.submit(spec)
            client.wait(sub["id"])
            full = list(client.events(sub["id"]))
            assert len(full) >= 4

        with BackgroundServer(workers=0, cache_dir=cache_dir) as second:
            client = Client(second.url)
            # reconnect mid-journal, exactly as a dropped SSE client would
            resumed = list(client.events(sub["id"], after=full[1]["id"]))
            assert resumed == full[2:]
            assert list(client.events(sub["id"])) == full

    def test_quota_balances_survive_restart(self, tmp_path):
        cache_dir = tmp_path / "cache"
        spec = make_spec(clusters=(1, 2))  # cost 2
        with BackgroundServer(workers=0, cache_dir=cache_dir, quota=3) as first:
            client = Client(first.url, client_id="alice")
            sub = client.submit(spec)
            client.wait(sub["id"])

        with BackgroundServer(workers=0, cache_dir=cache_dir, quota=3) as second:
            client = Client(second.url, client_id="alice")
            with pytest.raises(ServiceError) as excinfo:
                client.submit(spec)  # restart is not a free refill
            assert excinfo.value.code == "quota_exhausted"
            assert excinfo.value.detail["available"] == 1.0


# ---------------------------------------------------------------------------
# Graceful drain
# ---------------------------------------------------------------------------


class TestDrain:
    def test_drain_sheds_503_checkpoints_and_resumes_after_restart(self, tmp_path):
        import time as _time

        cache_dir = tmp_path / "cache"
        spec = make_spec(name="drained", kernels=("gzip", "mcf"))
        chaos.install(
            chaos.ChaosConfig(
                rules=(chaos.FaultRule(mode="hang", match={"kernel": "gzip"}),),
                hang_seconds=1.5,
            )
        )
        try:
            with BackgroundServer(workers=0, cache_dir=cache_dir) as server:
                client = Client(server.url)
                sub = client.submit(spec)
                deadline = _time.monotonic() + 10
                while (
                    client.status(sub["id"])["status"] == "queued"
                    and _time.monotonic() < deadline
                ):
                    _time.sleep(0.02)
                server.request_drain()
                while (
                    client.readyz()["status"] != "draining"
                    and _time.monotonic() < deadline
                ):
                    _time.sleep(0.02)
                ready = client.readyz()
                assert ready["status"] == "draining" and ready["draining"]
                health = client.healthz()  # liveness stays green
                assert health["status"] == "ok" and health["draining"]
                with pytest.raises(ServiceError) as excinfo:
                    client.submit(make_spec(name="late"))
                err = excinfo.value
                assert err.code == "draining" and err.status == 503
                assert err.detail["retry_after"] > 0
                validate_error(err.to_payload())
        finally:
            chaos.uninstall()

        # The drained server checkpointed: restart finishes the sweep
        # under its original id, bit-identical to an uninterrupted run.
        with BackgroundServer(workers=0, cache_dir=cache_dir) as server:
            client = Client(server.url)
            final = client.wait(sub["id"])
            assert final["status"] == "done" and final["jobs"]["failed"] == 0
            report = client.result(sub["id"])
            assert server.bench.simulations_run <= 1  # gzip settled pre-drain
        serial = run_spec(Workbench(workers=0), spec)
        assert json.dumps(report["figure"], sort_keys=True) == json.dumps(
            serial.to_dict(), sort_keys=True
        )


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def test_state_machine_open_half_open_close(self):
        from repro.experiments.executor import CircuitBreaker

        now = [0.0]
        breaker = CircuitBreaker(threshold=2, cooldown=10.0, clock=lambda: now[0])
        assert breaker.allow() and breaker.state == "closed"
        assert breaker.record_failure() is None
        assert breaker.record_failure() == "open"
        assert not breaker.allow()  # cooling down
        assert breaker.retry_after() == pytest.approx(10.0)
        now[0] += 10.0
        assert breaker.allow() and breaker.state == "half_open"
        assert not breaker.allow()  # one probe at a time
        assert breaker.record_failure() == "open"  # probe failed: back to open
        now[0] += 10.0
        assert breaker.allow()
        assert breaker.record_success() == "close"
        assert breaker.state == "closed" and breaker.failures == 0
        assert breaker.opens_total == 2
        snap = breaker.snapshot()
        assert snap["state"] == "closed" and snap["opens_total"] == 2

    def test_success_resets_consecutive_count(self):
        from repro.experiments.executor import CircuitBreaker

        breaker = CircuitBreaker(threshold=3, cooldown=1.0)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # not consecutive any more
        assert breaker.record_failure() is None
        assert breaker.state == "closed"


class _FakeExecutor:
    """Scriptable Executor for breaker unit tests."""

    def __init__(self, name="fake"):
        self.name = name
        self.calls = 0
        self.outcomes: list = []
        self.raise_exc: Exception | None = None
        self.closed = False

    def execute(self, jobs, **kwargs):
        self.calls += 1
        if self.raise_exc is not None:
            raise self.raise_exc
        return list(self.outcomes) or [
            SimpleNamespace(failure=None) for _ in jobs
        ]

    def close(self):
        self.closed = True


class _FakeTracer:
    def __init__(self):
        self.events: list[tuple[str, dict]] = []

    def event(self, name, **meta):
        self.events.append((name, meta))


class TestBreakerExecutor:
    def test_connect_failures_open_and_fall_back(self):
        from repro.experiments.executor import BreakerExecutor, CircuitBreaker
        from repro.experiments.outcomes import ExecutorUnavailable

        now = [0.0]
        primary, fallback, tracer = _FakeExecutor("distributed"), _FakeExecutor("local"), _FakeTracer()
        primary.raise_exc = ExecutorUnavailable("endpoint down")
        wrapped = BreakerExecutor(
            primary,
            fallback=fallback,
            breaker=CircuitBreaker(threshold=2, cooldown=5.0, clock=lambda: now[0]),
            tracer=tracer,
        )
        jobs = [object(), object()]
        assert wrapped.execute(jobs) is not None  # failure 1: falls back
        assert wrapped.execute(jobs) is not None  # failure 2: trips open
        assert wrapped.breaker.state == "open"
        assert primary.calls == 2
        wrapped.execute(jobs)  # open: straight to fallback, primary untouched
        assert primary.calls == 2 and fallback.calls == 3
        assert [n for n, _ in tracer.events] == ["service.breaker.open"]

        now[0] += 5.0  # cooldown over: half-open probe reaches primary
        primary.raise_exc = None
        wrapped.execute(jobs)
        assert primary.calls == 3
        assert wrapped.breaker.state == "closed"
        names = [n for n, _ in tracer.events]
        assert names == [
            "service.breaker.open",
            "service.breaker.half_open",
            "service.breaker.close",
        ]
        wrapped.close()
        assert primary.closed and fallback.closed

    def test_worker_lost_outcomes_count_as_failures(self):
        from repro.experiments.executor import BreakerExecutor, CircuitBreaker

        primary = _FakeExecutor("distributed")
        primary.outcomes = [
            SimpleNamespace(failure=SimpleNamespace(error_type="WorkerLost"))
        ]
        wrapped = BreakerExecutor(
            primary,
            fallback=_FakeExecutor("local"),
            breaker=CircuitBreaker(threshold=1, cooldown=60.0),
        )
        wrapped.execute([object()])
        assert wrapped.breaker.state == "open"

    def test_open_without_fallback_raises_unavailable(self):
        from repro.experiments.executor import BreakerExecutor, CircuitBreaker
        from repro.experiments.outcomes import ExecutorUnavailable

        primary = _FakeExecutor("distributed")
        primary.raise_exc = ConnectionError("refused")
        wrapped = BreakerExecutor(
            primary, breaker=CircuitBreaker(threshold=1, cooldown=60.0)
        )
        with pytest.raises(ExecutorUnavailable):
            wrapped.execute([object()])
        assert wrapped.breaker.state == "open"

    def test_hold_mode_respects_should_stop(self):
        from repro.experiments.executor import BreakerExecutor, CircuitBreaker
        from repro.experiments.outcomes import ExecutionInterrupted

        primary = _FakeExecutor("distributed")
        breaker = CircuitBreaker(threshold=1, cooldown=60.0)
        breaker.record_failure()  # already open
        wrapped = BreakerExecutor(primary, breaker=breaker, hold_poll=0.01)
        with pytest.raises(ExecutionInterrupted):
            wrapped.execute([object()], should_stop=lambda: True)
        assert primary.calls == 0  # never reached the dead backend

    def test_unreachable_workers_endpoint_degrades_to_local(self, tmp_path):
        # Service-level: bind the endpoint port first so the distributed
        # coordinator cannot (EADDRINUSE), then watch the breaker open and
        # the sweep complete on the local fallback regardless.
        import socket

        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            with BackgroundServer(
                workers=0,
                cache_dir=tmp_path / "cache",
                executor="distributed",
                workers_endpoint=f"127.0.0.1:{port}",
                breaker_threshold=1,
                breaker_cooldown=300.0,
            ) as server:
                client = Client(server.url)
                spec = make_spec(kernels=("gzip", "mcf"))
                report = client.run(spec)
                assert report["totals"].get("failed", 0) == 0
                snap = client.stats()["durability"]["breaker"]
                assert snap["state"] == "open" and snap["opens_total"] == 1
                ready = client.readyz()  # degraded but still ready
                assert ready["status"] == "ready"
                assert ready["breaker"]["state"] == "open"
        finally:
            blocker.close()

        serial = run_spec(Workbench(workers=0), spec)
        assert json.dumps(report["figure"], sort_keys=True) == json.dumps(
            serial.to_dict(), sort_keys=True
        )


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_controller_caps_and_force(self):
        from repro.service import AdmissionController

        control = AdmissionController(max_queue_depth=2, max_client_inflight=1)
        control.admit("a")
        with pytest.raises(ServiceError) as excinfo:
            control.admit("a")  # per-client cap
        assert excinfo.value.code == "overloaded"
        assert excinfo.value.detail["reason"] == "client_inflight"
        control.admit("b")
        with pytest.raises(ServiceError) as excinfo:
            control.admit("c")  # global cap
        assert excinfo.value.detail["reason"] == "queue_full"
        control.admit("c", force=True)  # recovery bypasses caps but counts
        assert control.inflight == 3
        snap = control.snapshot()
        assert snap["enabled"] and snap["inflight"] == 3
        control.release("a")
        with pytest.raises(ServiceError):
            control.admit("a")  # forced slot still occupies the queue
        control.release("c")
        control.admit("a")  # slot freed
        assert control.inflight == 2
        assert control.shed_total == 3

    def test_per_client_inflight_cap_sheds_503(self, tmp_path):
        chaos.install(
            chaos.ChaosConfig(
                rules=(chaos.FaultRule(mode="hang", match={"kernel": "gzip"}),),
                hang_seconds=1.5,
            )
        )
        try:
            with BackgroundServer(
                workers=0, cache_dir=tmp_path / "cache", max_client_inflight=1
            ) as server:
                client = Client(server.url, client_id="greedy")
                slow = client.submit(make_spec(name="slow", kernels=("gzip",)))
                with pytest.raises(ServiceError) as excinfo:
                    client.submit(make_spec(name="eager", kernels=("mcf",)))
                err = excinfo.value
                assert err.code == "overloaded" and err.status == 503
                assert err.detail["reason"] == "client_inflight"
                validate_error(err.to_payload())
                # other tenants are unaffected by one client's backlog
                other = Client(server.url, client_id="patient")
                sub = other.submit(make_spec(name="other", kernels=("gcc",)))
                client.wait(slow["id"])
                other.wait(sub["id"])
                # terminal experiments release their slot
                retry = client.submit(make_spec(name="eager2", kernels=("mcf",)))
                assert client.wait(retry["id"])["status"] == "done"
        finally:
            chaos.uninstall()


# ---------------------------------------------------------------------------
# Bounded event journal (memory spill + read-through)
# ---------------------------------------------------------------------------


class TestEventBound:
    def test_journal_spills_to_store_and_replays_through(self, tmp_path):
        with BackgroundServer(
            workers=0, cache_dir=tmp_path / "cache", max_events_memory=2
        ) as server:
            client = Client(server.url)
            spec = make_spec(kernels=("gzip", "mcf", "gcc"))
            sub = client.submit(spec)
            client.wait(sub["id"])

            record = server._records[sub["id"]]
            assert record.events_total >= 5  # status x2, 3 jobs, done
            assert len(record.events) <= 2  # memory stays bounded
            assert record.events_base == record.events_total - len(record.events)
            assert server.store.event_count(sub["id"]) == record.events_total

            full = list(client.events(sub["id"]))
            assert [e["id"] for e in full] == list(range(1, record.events_total + 1))
            # Last-Event-ID landing inside the spilled prefix reads through
            resumed = list(client.events(sub["id"], after=1))
            assert resumed == full[1:]
            # status payload counts the whole journal, not just memory
            assert client.status(sub["id"])["events"] == record.events_total


# ---------------------------------------------------------------------------
# SIGKILL acceptance: crash mid-sweep, restart, bit-identical completion
# ---------------------------------------------------------------------------


def _journal_settles(journal_path) -> set[str]:
    if not journal_path.exists():
        return set()
    keys = set()
    for line in journal_path.read_text().splitlines():
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(entry, dict) and entry.get("type") == "settle":
            keys.add(entry["key"])
    return keys


class TestSigkillRecovery:
    def _spawn(self, cache_dir):
        import os
        import pathlib
        import subprocess
        import sys

        env = dict(os.environ)
        env["PYTHONUNBUFFERED"] = "1"
        src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--cache-dir", str(cache_dir)],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        line = proc.stdout.readline()
        assert "repro service listening on " in line, line
        url = line.split("repro service listening on ", 1)[1].split()[0]
        return proc, url

    def test_kill_9_mid_sweep_restart_completes_bit_identical(self, tmp_path):
        import os
        import signal
        import time as _time

        from repro.service import default_store_dir

        cache_dir = tmp_path / "cache"
        journal = default_store_dir(cache_dir) / "journal.jsonl"
        spec = make_spec(
            name="killed",
            kernels=("gzip", "mcf", "gcc"),
            clusters=(1, 2),
            instructions=8000,
        )
        total = 6

        proc, url = self._spawn(cache_dir)
        try:
            client = Client(url, client_id="chaos-monkey")
            client.wait_ready(timeout=30)
            sub = client.submit(spec)
            exp_id = sub["id"]
            deadline = _time.monotonic() + 120
            while len(_journal_settles(journal)) < 2:
                assert _time.monotonic() < deadline, "sweep never reached 2 settles"
                assert proc.poll() is None, "server died on its own"
                _time.sleep(0.01)
            os.kill(proc.pid, signal.SIGKILL)  # no goodbye
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        settled = _journal_settles(journal)
        assert settled and len(settled) < total + 1

        proc, url = self._spawn(cache_dir)
        try:
            client = Client(url, client_id="chaos-monkey")
            client.wait_ready(timeout=30)
            final = client.wait(exp_id, timeout=300, poll=0.1)
            assert final["status"] == "done"
            assert final["jobs"]["total"] == total
            assert final["jobs"]["failed"] == 0
            report = client.result(exp_id)
            stats = client.stats()
            # exactly-once across the crash: settled jobs are cache hits,
            # only the residue simulates again
            assert stats["simulations_run"] <= total - len(settled)
            assert stats["durability"]["recovered"]["experiments"] == 1
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=30)
            except Exception:
                proc.kill()
                proc.wait(timeout=30)

        serial = run_spec(Workbench(workers=0), spec)
        assert json.dumps(report["figure"], sort_keys=True) == json.dumps(
            serial.to_dict(), sort_keys=True
        )
