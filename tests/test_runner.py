"""Tests for the command-line experiment runner."""

import pytest

from repro.experiments.runner import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["figure8"])
        assert args.experiments == ["figure8"]
        assert args.instructions > 0
        assert args.benchmarks is None

    def test_multiple_experiments(self):
        args = build_parser().parse_args(["figure2", "figure4"])
        assert args.experiments == ["figure2", "figure4"]


class TestMain:
    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["not_a_figure"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_runs_small_experiment(self, capsys, tmp_path):
        code = main(
            [
                "figure8",
                "--instructions",
                "1500",
                "--benchmarks",
                "gcc",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert (tmp_path / "figure8.txt").exists()

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["figure8", "--benchmarks", "nonesuch"])


class TestSeededAndJson:
    def test_seeds_flag_averages(self, capsys, tmp_path):
        code = main(
            [
                "figure8",
                "--instructions",
                "1200",
                "--benchmarks",
                "gcc",
                "--seeds",
                "2",
                "--out",
                str(tmp_path),
                "--json",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean of 2 seeds" in out
        assert (tmp_path / "figure8.json").exists()

    def test_json_payload_valid(self, tmp_path):
        import json

        main(
            [
                "figure8",
                "--instructions",
                "1000",
                "--benchmarks",
                "gcc",
                "--out",
                str(tmp_path),
                "--json",
            ]
        )
        payload = json.loads((tmp_path / "figure8.json").read_text())
        assert payload["figure_id"] == "Figure 8"
        assert len(payload["rows"]) == 21
