"""Tests for the observability layer: telemetry, tracing, run reports.

The two invariants that matter most:

* **identity** -- telemetry-on and telemetry-off runs are bit-identical in
  simulation output (telemetry only observes), across the whole Figure 14
  policy matrix;
* **reconciliation** -- every counter the recorder derives equals the
  ground truth recomputed from the records (and, for the Figure 6 event
  classification, equals :func:`repro.analysis.events.
  classify_lost_cycle_events` exactly).
"""

from __future__ import annotations

import json
from collections import Counter

import pytest

from repro.api import (
    REPORT_SCHEMA,
    NullTelemetry,
    Recorder,
    RunJob,
    RunReport,
    Tracer,
    classify_lost_cycle_events,
    clustered_machine,
    execute_job,
    monolithic_machine,
    results_identical,
    telemetry_from_dict,
    telemetry_to_dict,
    validate_report,
)
from repro.criticality.critical_path import critical_flags
from repro.experiments.fig14 import BARS_BY_CLUSTER

INSTRUCTIONS = 1200


def _job(policy: str, clusters: int, metrics: bool, instructions: int = INSTRUCTIONS):
    config = monolithic_machine() if clusters == 1 else clustered_machine(clusters)
    return RunJob(
        kernel="gcc",
        instructions=instructions,
        seed=0,
        loc_mode="probabilistic",
        config=config,
        policy=policy,
        metrics=metrics,
    )


@pytest.fixture(scope="module")
def metrics_run():
    """One metrics-on run shared by the payload tests."""
    job = _job("l", 4, metrics=True)
    return execute_job(job)


# ---------------------------------------------------------------------------
# Identity: telemetry never changes simulation output
# ---------------------------------------------------------------------------


class TestTelemetryIdentity:
    @pytest.mark.parametrize(
        "clusters,policy",
        [(c, p) for c, policies in BARS_BY_CLUSTER.items() for p in policies],
    )
    def test_figure14_matrix_bit_identical(self, clusters, policy):
        on = execute_job(_job(policy, clusters, metrics=True, instructions=900))
        off = execute_job(_job(policy, clusters, metrics=False, instructions=900))
        assert on.telemetry is not None
        assert off.telemetry is None
        assert on.cycles == off.cycles
        assert results_identical(on, off)

    def test_null_telemetry_is_inert(self):
        null = NullTelemetry()
        assert null.interval == 0
        assert null.finalize(None) is None


# ---------------------------------------------------------------------------
# Reconciliation: recorded counters equal ground truth from the records
# ---------------------------------------------------------------------------


class TestTelemetryReconciliation:
    def test_steer_and_dispatch_counters_match_records(self, metrics_run):
        data = metrics_run.telemetry
        records = metrics_run.records
        assert data.steer_causes == dict(
            Counter(r.steer_cause.value for r in records)
        )
        assert data.dispatch_reasons == dict(
            Counter(r.dispatch_reason.value for r in records)
        )
        assert data.commit_reasons == dict(
            Counter(r.commit_reason.value for r in records)
        )
        assert data.instructions == len(records)
        assert data.cycles == metrics_run.cycles

    def test_event_classification_matches_analysis(self, metrics_run):
        """The payload's Figure 6 events equal analysis/events.py exactly."""
        data = metrics_run.telemetry
        flags = critical_flags(metrics_run.records)
        contention, forwarding = classify_lost_cycle_events(
            metrics_run.records, flags
        )
        assert data.contention_events == {
            "predicted_critical": contention.predicted_critical,
            "other": contention.other,
        }
        assert data.forwarding_events == {
            "load_balance": forwarding.load_balance,
            "dyadic": forwarding.dyadic,
            "other": forwarding.other,
        }

    def test_predictor_confusion_matches_flags(self, metrics_run):
        data = metrics_run.telemetry
        flags = critical_flags(metrics_run.records)
        confusion = data.predictor
        assert (
            confusion["true_positive"]
            + confusion["false_positive"]
            + confusion["false_negative"]
            + confusion["true_negative"]
            == len(metrics_run.records)
        )
        assert confusion["true_positive"] + confusion["false_negative"] == sum(flags)

    def test_interval_series_sums_to_instructions(self, metrics_run):
        data = metrics_run.telemetry
        series = data.interval_series
        n = len(metrics_run.records)
        assert sum(series["dispatched"]) == n
        assert sum(series["issued"]) == n
        assert sum(series["committed"]) == n
        assert sum(series["stall_steer"]) == data.dispatch_reasons.get(
            "steer_stall", 0
        )
        assert sum(series["stall_window"]) == data.dispatch_reasons.get(
            "cluster_full", 0
        )

    def test_samples_cover_the_run(self, metrics_run):
        data = metrics_run.telemetry
        assert data.samples, "a >1000-cycle run must produce live samples"
        clusters = metrics_run.config.num_clusters
        last = 0
        for sample in data.samples:
            assert len(sample["occupancy"]) == clusters
            assert len(sample["ready"]) == clusters
            assert len(sample["wakeup_depth"]) == clusters
            assert sample["cycle"] >= last
            last = sample["cycle"]
        assert last <= metrics_run.cycles


# ---------------------------------------------------------------------------
# Serialization and cache transparency
# ---------------------------------------------------------------------------


class TestTelemetrySerialization:
    def test_payload_round_trips_losslessly(self, metrics_run):
        data = telemetry_to_dict(metrics_run.telemetry)
        revived = telemetry_from_dict(json.loads(json.dumps(data)))
        assert telemetry_to_dict(revived) == data

    def test_result_dict_omits_key_when_off(self):
        from repro.api import result_to_dict

        off = execute_job(_job("dependence", 2, metrics=False, instructions=400))
        assert "telemetry" not in result_to_dict(off)

    def test_job_key_unchanged_for_metrics_off(self):
        """A telemetry-off job hashes exactly as before the field existed."""
        from repro.api import job_key

        on = _job("l", 4, metrics=True, instructions=400)
        off = _job("l", 4, metrics=False, instructions=400)
        assert job_key(on) != job_key(off)
        legacy = RunJob(
            kernel=off.kernel,
            instructions=off.instructions,
            seed=off.seed,
            loc_mode=off.loc_mode,
            config=off.config,
            policy=off.policy,
        )
        assert job_key(off) == job_key(legacy)

    def test_cache_round_trips_telemetry(self, tmp_path):
        from repro.api import RunCache

        cache = RunCache(tmp_path)
        job = _job("focused", 2, metrics=True, instructions=400)
        result = execute_job(job)
        cache.store(job, result)
        loaded = cache.load(job)
        assert loaded is not None and loaded.telemetry is not None
        assert telemetry_to_dict(loaded.telemetry) == telemetry_to_dict(
            result.telemetry
        )
        assert results_identical(loaded, result)


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------


class TestTracer:
    def test_spans_and_summary(self):
        ticks = iter(range(100))
        tracer = Tracer(clock=lambda: next(ticks))
        with tracer.span("work", kernel="gcc"):
            pass
        tracer.add("cache.load", 0.5, hit=True)
        summary = tracer.summary()
        assert summary["work"]["count"] == 1
        assert summary["cache.load"]["seconds"] == 0.5
        assert "work" in tracer.format_summary()

    def test_export_merge_round_trip(self):
        worker = Tracer()
        with worker.span("measure"):
            pass
        parent = Tracer()
        parent.merge(worker.export(), worker=True)
        assert parent.spans[0].name == "measure"
        assert parent.spans[0].meta["worker"] is True

    def test_execute_job_records_stages(self):
        tracer = Tracer()
        execute_job(_job("l", 2, metrics=False, instructions=300), tracer=tracer)
        names = {span.name for span in tracer.spans}
        assert {"trace-prep", "warmup", "measure"} <= names


# ---------------------------------------------------------------------------
# Run reports
# ---------------------------------------------------------------------------


class TestRunReport:
    def test_from_runs_validates_and_renders(self, metrics_run):
        job = _job("l", 4, metrics=True)
        report = RunReport.from_runs(
            "unit", [(job, metrics_run)], workbench={"instructions": INSTRUCTIONS}
        )
        payload = json.loads(report.to_json())
        assert payload["schema"] == REPORT_SCHEMA
        assert payload["totals"]["runs"] == 1
        assert payload["runs"][0]["kernel"] == "gcc"
        assert payload["runs"][0]["telemetry"]["steer_causes"]
        rendered = report.render()
        assert "gcc" in rendered and "run report" in rendered

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_report({"schema": "bogus"})
        with pytest.raises(ValueError):
            validate_report(
                {
                    "schema": REPORT_SCHEMA,
                    "name": "x",
                    "workbench": {},
                    "runs": [{}],
                    "totals": {},
                }
            )

    def test_cli_metrics_emits_valid_report(self, tmp_path, capsys):
        from repro.experiments.runner import main

        code = main(
            [
                "figure14",
                "--instructions",
                "900",
                "--benchmarks",
                "gcc",
                "--no-cache",
                "--metrics",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        report_path = tmp_path / "figure14_report.json"
        payload = json.loads(report_path.read_text())
        validate_report(payload)
        assert payload["name"] == "figure14"
        assert payload["totals"]["runs"] > 0
        assert all(run["telemetry"] for run in payload["runs"])
        assert "run report" in capsys.readouterr().out

    def test_cli_trace_out_writes_spans(self, tmp_path):
        from repro.experiments.runner import main

        trace_path = tmp_path / "trace.json"
        code = main(
            [
                "figure8",
                "--instructions",
                "600",
                "--benchmarks",
                "gcc",
                "--no-cache",
                "--trace-out",
                str(trace_path),
            ]
        )
        assert code == 0
        trace = json.loads(trace_path.read_text())
        assert {"spans", "summary"} <= set(trace)
        assert any(span["name"] == "measure" for span in trace["spans"])


# ---------------------------------------------------------------------------
# Facade and deprecation
# ---------------------------------------------------------------------------


class TestFacade:
    def test_api_exposes_every_symbol(self):
        import repro.api as api

        missing = [name for name in api.__all__ if not hasattr(api, name)]
        assert not missing

    def test_api_run_and_figure_helpers(self):
        import repro.api as api

        result = api.run("gcc", instructions=400, policy="dependence")
        assert result.cycles > 0
        assert set(api.list_figures()) == set(api.EXPERIMENTS)
        with pytest.raises(ValueError):
            api.figure("not_a_figure")

    def test_deep_import_warns(self):
        import repro.experiments as experiments

        experiments.__dict__.pop("Workbench", None)  # re-arm the one-shot warn
        with pytest.warns(DeprecationWarning, match="repro.api"):
            experiments.Workbench  # noqa: B018
        # Resolved value is the real class, cached for later accesses.
        from repro.experiments.harness import Workbench

        assert experiments.Workbench is Workbench

    def test_unknown_attribute_still_raises(self):
        import repro.experiments as experiments

        with pytest.raises(AttributeError):
            experiments.does_not_exist  # noqa: B018
