"""Unit tests for the Gonzalez-style stall baselines (Section 5 contrast)."""

import pytest

from repro.core.instruction import DispatchReason, SteerCause
from repro.core.steering.stall_baselines import (
    AlwaysStallSteering,
    OccupancyStallSteering,
)
from tests.test_steering import FakeMachine, add_producer, make_inflight


class TestAlwaysStall:
    def test_stalls_when_desired_full(self):
        machine = FakeMachine()
        add_producer(machine, 5, cluster=2)
        machine.free[2] = 0
        decision = AlwaysStallSteering().choose(
            make_inflight(10, deps=(5,)), machine
        )
        assert decision.is_stall
        assert decision.stall_reason is DispatchReason.STEER_STALL
        assert decision.blocking_cluster == 2

    def test_collocates_when_space(self):
        machine = FakeMachine()
        add_producer(machine, 5, cluster=2)
        decision = AlwaysStallSteering().choose(
            make_inflight(10, deps=(5,)), machine
        )
        assert decision.cluster == 2


class TestOccupancyStall:
    def test_stalls_when_machine_busy(self):
        machine = FakeMachine(num_clusters=4, window=4)
        add_producer(machine, 5, cluster=2)
        machine.free = [1, 1, 0, 1]
        machine.load = [3, 3, 4, 3]  # 13/16 > 0.75
        decision = OccupancyStallSteering(occupancy_threshold=0.75).choose(
            make_inflight(10, deps=(5,)), machine
        )
        assert decision.is_stall

    def test_load_balances_when_machine_idle(self):
        machine = FakeMachine(num_clusters=4, window=4)
        add_producer(machine, 5, cluster=2)
        machine.free = [4, 4, 0, 4]
        machine.load = [0, 0, 4, 0]  # 4/16 < 0.75
        decision = OccupancyStallSteering(occupancy_threshold=0.75).choose(
            make_inflight(10, deps=(5,)), machine
        )
        assert not decision.is_stall
        assert decision.cause is SteerCause.LOAD_BALANCE_FULL

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            OccupancyStallSteering(occupancy_threshold=1.5)

    def test_name_includes_threshold(self):
        policy = OccupancyStallSteering(occupancy_threshold=0.5)
        assert "0.50" in policy.name
