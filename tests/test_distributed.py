"""Distributed sweeps: coordinator + ``repro worker`` end to end.

The acceptance property mirrors the parallel/chaos suites: results
produced through any number of workers, any join order, stolen leases
and injected faults must be bit-identical to a serial in-process run.
The shared content-addressed :class:`RunCache` is the result store, so
at-least-once execution (work stealing, duplicated runs) is benign by
construction; these tests drive both transports, kill a real worker
process mid-sweep, corrupt a cache entry, and interrupt/resume through
the sweep manifest to prove it.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.serialize import results_identical
from repro.distwork.coordinator import DirCoordinator, TaskBoard, TcpCoordinator
from repro.distwork.protocol import (
    ProtocolError,
    job_from_dict,
    job_to_dict,
    outcome_to_dict,
    parse_endpoint,
    policy_from_dict,
    policy_to_dict,
    recv_frame,
    send_frame,
)
from repro.distwork.worker import execute_leased_job, run_supervisor, run_worker
from repro.experiments.cache import RunCache, job_key
from repro.experiments.distributed import DistributedExecutor
from repro.experiments.harness import Workbench
from repro.experiments.manifest import SweepManifest, default_manifest_dir
from repro.experiments.outcomes import (
    ExecutionInterrupted,
    ExecutionPolicy,
    JobOutcome,
    RunFailure,
)
from repro.specs import ExperimentSpec, MachineSpec, SweepSpec, spec_hash
from repro.testing.chaos import (
    ChaosConfig,
    FaultRule,
    corrupt_cache_entry,
    uninstall,
)
from repro.workloads.suite import get_kernel

REPO = pathlib.Path(__file__).resolve().parent.parent
INSTRUCTIONS = 400
KERNELS = ("gcc", "mcf")


@pytest.fixture(autouse=True)
def _no_leftover_chaos(monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    uninstall()
    yield
    uninstall()


def make_bench(cache=None, **kwargs):
    kwargs.setdefault("instructions", INSTRUCTIONS)
    kwargs.setdefault("benchmarks", [get_kernel(k) for k in KERNELS])
    return Workbench(cache=cache, **kwargs)


def make_jobs(bench, policies=("l", "s")):
    return [
        bench.job(get_kernel(kernel), bench.clustered(2), policy)
        for kernel in KERNELS
        for policy in policies
    ]


def start_worker_threads(
    endpoint, count, *, cache_root=None, poll=0.01, delays=None
):
    """In-process workers (threads): returns (threads, counts, stop_event)."""
    stop = threading.Event()
    counts = [0] * count

    def serve(index: int) -> None:
        if delays is not None and delays[index]:
            time.sleep(delays[index])
        cache = RunCache(cache_root) if cache_root is not None else None
        counts[index] = run_worker(
            endpoint,
            cache=cache,
            worker_id=f"t{index}",
            poll=poll,
            stop_event=stop,
        )

    threads = [
        threading.Thread(target=serve, args=(i,), daemon=True) for i in range(count)
    ]
    for thread in threads:
        thread.start()
    return threads, counts, stop


def stop_worker_threads(executor, threads, stop):
    executor.close()  # tells workers to exit at their next poll
    stop.set()
    for thread in threads:
        thread.join(timeout=10)
    assert not any(thread.is_alive() for thread in threads)


# ---------------------------------------------------------------------------
# Protocol and ledger units
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_parse_endpoint(self):
        assert parse_endpoint("127.0.0.1:7070") == ("tcp", ("127.0.0.1", 7070))
        assert parse_endpoint("localhost:0") == ("tcp", ("localhost", 0))
        assert parse_endpoint("/tmp/spool")[0] == "dir"
        assert parse_endpoint("relative/spool")[0] == "dir"
        with pytest.raises(ValueError):
            parse_endpoint("")

    def test_job_round_trip(self):
        bench = make_bench()
        for job in make_jobs(bench):
            assert job_from_dict(job_to_dict(job)) == job

    def test_policy_round_trip(self):
        policy = ExecutionPolicy(max_retries=5, job_timeout=2.0, fail_fast=True)
        assert policy_from_dict(policy_to_dict(policy)) == policy
        assert policy_from_dict({}) == ExecutionPolicy()

    def test_framing_and_eof(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"op": "hello", "n": 1})
            assert recv_frame(b) == {"op": "hello", "n": 1}
            a.close()
            assert recv_frame(b) is None  # clean EOF at a frame boundary
        finally:
            b.close()

    def test_mid_frame_eof_is_an_error(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\x00\x00\x00\xff{")  # header promises more bytes
            a.close()
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            b.close()


class TestTaskBoard:
    def _task(self, tid="t1", max_retries=2):
        return {
            "id": tid,
            "job": {"kernel": "gcc"},
            "policy": {"max_retries": max_retries},
            "attempt": 0,
        }

    def test_expired_lease_requeues_with_attempt_charged(self):
        board = TaskBoard(lease_timeout=0.0)
        board.add(self._task())
        assert board.claim("w1")["attempt"] == 0
        board.reap_expired()
        stolen = board.claim("w2")
        assert stolen is not None and stolen["attempt"] == 1

    def test_leases_dying_past_budget_settle_as_worker_lost(self):
        board = TaskBoard(lease_timeout=0.0)
        board.add(self._task(max_retries=1))
        for _ in range(2):  # max_retries + 1 lease deaths
            assert board.claim("w") is not None
            board.reap_expired()
        assert board.claim("w") is None
        ((tid, outcome),) = [board.results.get_nowait()]
        assert tid == "t1"
        assert outcome["failure"]["error_type"] == "WorkerLost"
        assert outcome["failure"]["kind"] == "crash"

    def test_complete_settles_at_most_once(self):
        board = TaskBoard(lease_timeout=60.0)
        board.add(self._task())
        board.claim("w1")
        assert board.complete("t1", {"ok": True})
        assert not board.complete("t1", {"ok": True})  # late duplicate dropped
        board.release_worker("w1")  # no revival after settle
        assert board.claim("w2") is None

    def test_cancel_pending_drops_unleased_tasks(self):
        board = TaskBoard(lease_timeout=60.0)
        board.add(self._task("a"))
        board.add(self._task("b"))
        board.claim("w1")
        assert board.cancel_pending() == 1
        assert board.claim("w1") is None


# ---------------------------------------------------------------------------
# Spool hygiene: a reused spool directory must never leak a previous run
# ---------------------------------------------------------------------------


class TestSpoolHygiene:
    def test_fresh_dir_coordinator_clears_stale_spool(self, tmp_path):
        spool = tmp_path / "spool"
        for sub in ("tasks", "active", "results"):
            (spool / sub).mkdir(parents=True)
        (spool / "tasks" / "b001-00000.json").write_text("{}")
        (spool / "active" / "b001-00001.json").write_text("{}")
        (spool / "results" / "b001-00002.json").write_text(
            '{"id": "b001-00002", "outcome": {}}'
        )
        (spool / "stop").touch()
        coordinator = DirCoordinator(spool)
        assert coordinator.pump() == []
        assert not list((spool / "tasks").iterdir())
        assert not list((spool / "active").iterdir())
        assert not list((spool / "results").iterdir())
        assert not (spool / "stop").exists()

    def test_task_ids_are_scoped_per_executor(self, tmp_path):
        first = DistributedExecutor(str(tmp_path / "a"))
        second = DistributedExecutor(str(tmp_path / "b"))
        assert first._nonce != second._nonce

    def test_reused_spool_reexecutes_instead_of_adopting_results(self, tmp_path):
        """The review scenario: sweep A leaves results/*.json behind; a
        later sweep B over the same spool directory (different jobs!)
        must execute its own jobs, not settle them with A's outcomes."""
        from repro.experiments.parallel import execute_job

        spool = str(tmp_path / "spool")
        bench = make_bench()
        jobs_a = make_jobs(bench, policies=("l",))
        first = DistributedExecutor(spool, poll=0.01)
        threads, _, stop = start_worker_threads(spool, 1)
        try:
            outcomes_a = first.execute(jobs_a)
        finally:
            stop_worker_threads(first, threads, stop)
        assert all(outcome.ok for outcome in outcomes_a)

        jobs_b = make_jobs(bench, policies=("s",))
        second = DistributedExecutor(spool, poll=0.01)
        second._ensure_transport()  # clears the spool (and A's stop file)
        threads2, counts2, stop2 = start_worker_threads(spool, 1)
        try:
            outcomes_b = second.execute(jobs_b)
        finally:
            stop_worker_threads(second, threads2, stop2)
        assert sum(counts2) == len(jobs_b)  # really executed, not adopted
        for job, outcome in zip(jobs_b, outcomes_b):
            assert outcome.ok and outcome.source == "run"
            assert results_identical(outcome.result, execute_job(job))

    def test_settle_rejects_foreign_job_payload(self, tmp_path):
        bench = make_bench()
        mine, other = make_jobs(bench)[:2]
        executor = DistributedExecutor(str(tmp_path / "spool"))
        failure = RunFailure(
            kind="error", error_type="X", message="m", attempts=1, elapsed=0.0
        )
        foreign = outcome_to_dict(JobOutcome(job=other, failure=failure, attempts=1))
        with pytest.raises(ProtocolError, match="different job"):
            executor._settle(foreign, mine, None)
        ours = outcome_to_dict(JobOutcome(job=mine, failure=failure, attempts=1))
        settled = executor._settle(ours, mine, None)
        assert settled.job is mine and not settled.ok


# ---------------------------------------------------------------------------
# Stale-lease stealing on the spool transport
# ---------------------------------------------------------------------------


class TestDirSteal:
    def _publish_claimed(self, coordinator, max_retries):
        task = {
            "id": "t1",
            "job": {"kernel": "gcc"},
            "policy": {"max_retries": max_retries},
            "attempt": 0,
        }
        coordinator.publish(task)
        tasks_path = coordinator.tasks_dir / "t1.json"
        active_path = coordinator.active_dir / "t1.json"
        os.replace(tasks_path, active_path)  # a worker's claim
        stale = time.time() - 60.0
        os.utime(active_path, (stale, stale))
        return tasks_path, active_path

    def test_steal_moves_task_atomically_back_onto_queue(self, tmp_path):
        coordinator = DirCoordinator(tmp_path / "spool", lease_timeout=5.0)
        tasks_path, active_path = self._publish_claimed(coordinator, max_retries=5)
        assert coordinator.pump() == []
        # The task lives in exactly one directory: re-queued with the
        # lost lease's attempt charged, and gone from active/.
        assert tasks_path.exists() and not active_path.exists()
        assert json.loads(tasks_path.read_text())["attempt"] == 1

    def test_steal_past_budget_settles_worker_lost(self, tmp_path):
        coordinator = DirCoordinator(tmp_path / "spool", lease_timeout=5.0)
        tasks_path, active_path = self._publish_claimed(coordinator, max_retries=0)
        ((tid, outcome),) = coordinator.pump()
        assert tid == "t1"
        assert outcome["failure"]["error_type"] == "WorkerLost"
        assert not tasks_path.exists() and not active_path.exists()


# ---------------------------------------------------------------------------
# job_timeout enforcement on distributed workers
# ---------------------------------------------------------------------------


class TestDistributedJobTimeout:
    def test_hung_attempt_is_killed_and_retried(self, tmp_path, monkeypatch):
        """A first attempt that hangs (30s chaos sleep) is killed at the
        policy's job_timeout and charged a retryable ``timeout``; the
        retry runs clean.  Before enforcement the worker's heartbeat
        kept the hung job's lease alive for the full hang."""
        chaos = ChaosConfig(rules=(FaultRule(mode="hang", attempts=(1,)),))
        monkeypatch.setenv("REPRO_CHAOS", chaos.env_value())
        executor = DistributedExecutor(str(tmp_path / "spool"), poll=0.01)
        bench = make_bench()
        job = make_jobs(bench, policies=("l",))[0]
        threads, counts, stop = start_worker_threads(str(tmp_path / "spool"), 1)
        start = time.monotonic()
        try:
            (outcome,) = executor.execute(
                [job], policy=ExecutionPolicy(max_retries=2, job_timeout=0.5)
            )
        finally:
            stop_worker_threads(executor, threads, stop)
        assert outcome.ok
        assert outcome.attempts == 2  # attempt 1 timed out, attempt 2 clean
        assert time.monotonic() - start < 20.0  # nowhere near the 30s hang
        assert sum(counts) == 1


# ---------------------------------------------------------------------------
# Lost leases: the coordinator says so, the worker abandons the run
# ---------------------------------------------------------------------------


class TestLostLease:
    def test_heartbeat_replies_lost_after_steal(self):
        coordinator = TcpCoordinator("127.0.0.1", 0, lease_timeout=0.0)
        try:
            coordinator.publish(
                {
                    "id": "t1",
                    "job": {"kernel": "gcc"},
                    "policy": {"max_retries": 5},
                    "attempt": 0,
                }
            )
            sock = socket.create_connection(coordinator.address, timeout=10.0)
            try:
                send_frame(sock, {"op": "hello", "worker": "w1", "version": 1})
                assert recv_frame(sock)["op"] == "welcome"
                send_frame(sock, {"op": "next", "worker": "w1"})
                assert recv_frame(sock)["op"] == "task"
                send_frame(sock, {"op": "heartbeat", "worker": "w1", "id": "t1"})
                assert recv_frame(sock)["op"] == "ok"  # lease still ours
                coordinator.board.reap_expired()  # timeout 0: stolen at once
                send_frame(sock, {"op": "heartbeat", "worker": "w1", "id": "t1"})
                assert recv_frame(sock)["op"] == "lost"
            finally:
                sock.close()
        finally:
            coordinator.close()

    def test_execute_leased_job_abandons_when_told(self):
        bench = make_bench()
        job = make_jobs(bench)[0]
        task = {"id": "t", "job": job_to_dict(job), "policy": {}, "attempt": 0}
        with pytest.raises(ExecutionInterrupted):
            execute_leased_job(task, None, should_abandon=lambda: True)

    def test_tcp_worker_abandons_hung_job_whose_task_settled(self, monkeypatch):
        """A worker stuck in a hung attempt learns via a ``lost``
        heartbeat that its task settled elsewhere, kills the attempt and
        exits idle instead of sleeping out the 30s hang (and instead of
        reporting a result that would be dropped)."""
        chaos = ChaosConfig(rules=(FaultRule(mode="hang"),))
        monkeypatch.setenv("REPRO_CHAOS", chaos.env_value())
        coordinator = TcpCoordinator("127.0.0.1", 0, lease_timeout=0.6)
        bench = make_bench()
        job = make_jobs(bench)[0]
        coordinator.publish(
            {
                "id": "t1",
                "job": job_to_dict(job),
                # job_timeout activates the killable child; generous so
                # the lost lease (not the timeout) ends the attempt.
                "policy": {"max_retries": 0, "job_timeout": 20.0},
                "attempt": 0,
            }
        )
        executed = []
        host, port = coordinator.address
        thread = threading.Thread(
            target=lambda: executed.append(
                run_worker(
                    f"{host}:{port}",
                    worker_id="w1",
                    poll=0.02,
                    idle_timeout=0.5,
                )
            ),
            daemon=True,
        )
        start = time.monotonic()
        thread.start()
        try:
            deadline = time.monotonic() + 10.0
            while not coordinator.board._leases:
                assert time.monotonic() < deadline, "worker never claimed"
                time.sleep(0.01)
            # The task settles elsewhere (e.g. a steal finished first).
            assert coordinator.board.complete("t1", {"outcome": "elsewhere"})
            thread.join(timeout=30.0)
            assert not thread.is_alive()
        finally:
            coordinator.close()
        assert executed == [0]  # abandoned: nothing reported as executed
        assert time.monotonic() - start < 25.0  # did not sleep out the hang


# ---------------------------------------------------------------------------
# End-to-end over both transports
# ---------------------------------------------------------------------------


class TestTransportsMatchSerial:
    def test_dir_transport_bit_identical(self, tmp_path):
        from repro.experiments.parallel import execute_job

        serial = make_bench()
        want = [execute_job(job) for job in make_jobs(serial)]

        executor = DistributedExecutor(str(tmp_path / "spool"), poll=0.01)
        bench = make_bench(cache=RunCache(tmp_path / "cache"), executor=executor)
        jobs = make_jobs(bench)
        threads, counts, stop = start_worker_threads(
            str(tmp_path / "spool"), 2, cache_root=tmp_path / "cache"
        )
        try:
            executed = bench.prefetch(jobs)
            assert executed == len(jobs)
            for job, expected in zip(jobs, want):
                got = bench.result_for(job)
                assert got is not None and results_identical(expected, got)
        finally:
            stop_worker_threads(executor, threads, stop)
        assert sum(counts) == len(jobs)

    def test_tcp_transport_and_shared_cache_reuse(self, tmp_path):
        executor = DistributedExecutor("127.0.0.1:0", poll=0.01)
        executor._ensure_transport()  # resolves the ephemeral port
        bench = make_bench(cache=RunCache(tmp_path / "cache"), executor=executor)
        jobs = make_jobs(bench)
        threads, counts, stop = start_worker_threads(
            executor.endpoint, 3, cache_root=tmp_path / "cache"
        )
        try:
            assert bench.prefetch(jobs) == len(jobs)
            # Same transport, second batch: everything is already in the
            # workbench's memory cache, so nothing is even published.
            assert bench.prefetch(jobs) == 0
            # A fresh bench over the same shared cache settles from disk.
            bench2 = make_bench(cache=RunCache(tmp_path / "cache"))
            assert bench2.prefetch(make_jobs(bench2)) == 0
        finally:
            stop_worker_threads(executor, threads, stop)
        assert sum(counts) == len(jobs)


# ---------------------------------------------------------------------------
# The acceptance sweep: figure 14, three real workers, chaos injected
# ---------------------------------------------------------------------------


class TestChaosAcceptance:
    def test_figure14_three_process_workers_kill_and_corruption(
        self, tmp_path
    ):
        """Scaled-down acceptance run: Figure 14 through 3 ``repro
        worker`` processes with a 30% injected crash rate in the workers,
        one worker SIGKILLed mid-sweep (its lease is stolen), and one
        pre-corrupted cache entry (quarantined and recomputed) -- output
        identical to the fault-free serial figure."""
        from repro.experiments.fig14 import run_figure14

        kernels = [get_kernel(k) for k in KERNELS]
        clean_bench = Workbench(instructions=INSTRUCTIONS, benchmarks=kernels)
        clean = str(run_figure14(clean_bench))

        cache = RunCache(tmp_path / "cache")
        executor = DistributedExecutor("127.0.0.1:0", lease_timeout=2.0, poll=0.01)
        executor._ensure_transport()
        bench = Workbench(
            instructions=INSTRUCTIONS,
            benchmarks=kernels,
            cache=cache,
            executor=executor,
        )
        # Pre-corrupt one entry: store a real result, then damage it.
        spec = get_kernel("gcc")
        victim = bench.job(spec, bench.clustered(2), "focused")
        cache.store(victim, clean_bench.run(spec, clean_bench.clustered(2), "focused"))
        corrupt_cache_entry(cache, victim, mode="truncate")

        env = dict(
            os.environ,
            PYTHONPATH=str(REPO / "src"),
            REPRO_CHAOS=ChaosConfig(crash_rate=0.3, seed=11).env_value(),
        )
        procs = [
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "worker", executor.endpoint,
                    "--cache-dir", str(cache.root), "--id", f"p{i}",
                    "--poll", "0.02",
                ],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            for i in range(3)
        ]
        killer = threading.Timer(1.5, lambda: procs[0].send_signal(signal.SIGKILL))
        killer.daemon = True
        try:
            killer.start()
            with pytest.warns(RuntimeWarning, match="quarantined"):
                chaotic = str(run_figure14(bench))
        finally:
            killer.cancel()
            executor.close()
            for proc in procs:
                try:
                    proc.wait(timeout=15)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=5)
        assert chaotic == clean
        assert cache.quarantined == 1


# ---------------------------------------------------------------------------
# The worker supervisor (``repro worker --supervise N``)
# ---------------------------------------------------------------------------


class _FakeProc:
    def __init__(self, code):
        self.code = code

    def poll(self):
        return self.code


class TestSupervisor:
    def test_respawns_abnormal_exit_once(self):
        spawned = []

        def spawn(slot):
            # First incarnation dies like a SIGKILL; the respawn is clean.
            proc = _FakeProc(-signal.SIGKILL if not spawned else 0)
            spawned.append(proc)
            return proc

        respawns = run_supervisor(1, spawn, poll=0.005, respawn_delay=0.0)
        assert respawns == 1
        assert len(spawned) == 2

    def test_clean_exit_is_not_respawned(self):
        spawned = []

        def spawn(slot):
            proc = _FakeProc(0)
            spawned.append(proc)
            return proc

        assert run_supervisor(3, spawn, poll=0.005) == 0
        assert len(spawned) == 3

    def test_max_respawns_bounds_a_crash_loop(self):
        spawned = []

        def spawn(slot):
            proc = _FakeProc(1)
            spawned.append(proc)
            return proc

        respawns = run_supervisor(
            2, spawn, poll=0.005, respawn_delay=0.0, max_respawns=3
        )
        assert respawns == 3
        assert len(spawned) == 5  # 2 initial + 3 respawns

    def test_sigkilled_worker_is_respawned_and_sweep_finishes(self, tmp_path):
        """SIGKILL a supervised worker mid-sweep: the supervisor respawns
        it, the coordinator steals the dead lease, and the respawned
        worker finishes the sweep -- no outcome is lost."""
        cache = RunCache(tmp_path / "cache")
        spool = str(tmp_path / "spool")
        executor = DistributedExecutor(spool, lease_timeout=1.0, poll=0.01)
        executor._ensure_transport()
        bench = make_bench(cache=cache, executor=executor)
        jobs = make_jobs(bench)

        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        supervisor = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker", spool,
                "--cache-dir", str(cache.root), "--supervise", "1",
                "--poll", "0.02", "--respawn-delay", "0.1",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )

        def read_pid() -> int:
            line = supervisor.stdout.readline()
            assert "pid" in line, f"unexpected supervisor output: {line!r}"
            return int(line.rsplit(" ", 1)[1])

        killed = threading.Event()

        def kill_once_leased(pid: int) -> None:
            # Wait until the worker actually holds a lease, then kill it
            # mid-run (falling back to a timed kill if leases are too
            # quick to observe).
            active = pathlib.Path(spool) / "active"
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                if active.exists() and any(active.iterdir()):
                    break
                time.sleep(0.01)
            os.kill(pid, signal.SIGKILL)
            killed.set()

        try:
            first_pid = read_pid()
            killer = threading.Thread(
                target=kill_once_leased, args=(first_pid,), daemon=True
            )
            killer.start()
            outcomes = executor.execute(
                jobs, policy=ExecutionPolicy(max_retries=3)
            )
            killer.join(timeout=20.0)
            assert killed.is_set()
            assert all(out.ok for out in outcomes)
            second_pid = read_pid()  # the respawned worker
            assert second_pid != first_pid
        finally:
            executor.close()  # stop file: the respawn exits 0, supervisor ends
            try:
                supervisor.wait(timeout=20)
            except subprocess.TimeoutExpired:
                supervisor.kill()
                supervisor.wait(timeout=5)
        assert supervisor.returncode == 0


# ---------------------------------------------------------------------------
# Interrupt / resume through the sweep manifest
# ---------------------------------------------------------------------------


class TestManifestResume:
    def test_interrupted_distributed_sweep_resumes(self, tmp_path):
        spec = ExperimentSpec(
            name="dist-resume",
            sweeps=(SweepSpec((MachineSpec(2),), ("l", "s")),),
            workloads=[{"kernel": k} for k in KERNELS],
            instructions=INSTRUCTIONS,
        )
        serial_bench = make_bench()
        from repro.experiments.sweep import run_spec

        want = str(run_spec(serial_bench, spec))

        cache = RunCache(tmp_path / "cache")
        manifest = SweepManifest.open(
            default_manifest_dir(cache.root), spec_hash(spec), spec.name
        )
        executor = DistributedExecutor(str(tmp_path / "spool1"), poll=0.01)
        bench = make_bench(cache=cache, executor=executor)
        jobs = spec.jobs(bench)
        threads, _, stop = start_worker_threads(
            str(tmp_path / "spool1"), 2, cache_root=cache.root
        )
        settled = []

        def record(outcome):
            manifest.record(job_key(outcome.job), outcome)
            manifest.save()
            settled.append(outcome)

        try:
            with pytest.raises(ExecutionInterrupted, match="distributed"):
                bench.prefetch(
                    jobs, on_outcome=record, should_stop=lambda: len(settled) >= 2
                )
        finally:
            manifest.save(force=True)
            stop_worker_threads(executor, threads, stop)
        assert 2 <= len(settled) < len(jobs)

        # Resume on a fresh bench/spool: the manifest reports what was
        # already journaled and the shared cache supplies those results.
        resumed_manifest = SweepManifest.open(
            default_manifest_dir(cache.root), spec_hash(spec), spec.name
        )
        assert len(resumed_manifest.resumed) == len(settled)
        executor2 = DistributedExecutor(str(tmp_path / "spool2"), poll=0.01)
        bench2 = make_bench(cache=RunCache(cache.root), executor=executor2)
        threads2, _, stop2 = start_worker_threads(
            str(tmp_path / "spool2"), 2, cache_root=cache.root
        )
        try:
            figure = run_spec(bench2, spec, resumed_manifest)
        finally:
            stop_worker_threads(executor2, threads2, stop2)
        assert any(note.startswith("resumed:") for note in figure.notes)
        figure.notes = [n for n in figure.notes if not n.startswith("resumed:")]
        assert str(figure) == want
        # Jobs the shared cache satisfied on resume are never re-journaled
        # (same as the local path: the prefetch cache pre-scan bypasses
        # on_outcome), so the manifest holds at least the interrupted
        # run's record and nothing was re-executed.
        assert resumed_manifest.summary()["completed"] >= len(settled)
        assert bench2.exec_stats.executed == 0


# ---------------------------------------------------------------------------
# Property: executed-job set is shard-count and join-order independent
# ---------------------------------------------------------------------------


class TestShardingProperties:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        n_workers=st.integers(min_value=1, max_value=3),
        delays=st.lists(
            st.sampled_from([0.0, 0.01, 0.03]), min_size=3, max_size=3
        ),
    )
    def test_executed_jobs_independent_of_shards_and_join_order(
        self, n_workers, delays
    ):
        """Every submitted job is executed exactly once (no cache, no
        faults), whatever the worker count and whenever workers join."""
        root = pathlib.Path(tempfile.mkdtemp(prefix="distwork-prop-"))
        try:
            executor = DistributedExecutor(
                str(root / "spool"), lease_timeout=60.0, poll=0.005
            )
            bench = make_bench(instructions=120, executor=executor)
            jobs = make_jobs(bench, policies=("l",))
            threads, counts, stop = start_worker_threads(
                str(root / "spool"),
                n_workers,
                cache_root=None,
                poll=0.005,
                delays=delays[:n_workers],
            )
            try:
                outcomes = executor.execute(jobs, policy=ExecutionPolicy())
            finally:
                stop_worker_threads(executor, threads, stop)
            assert [outcome.job for outcome in outcomes] == jobs
            assert all(outcome.ok for outcome in outcomes)
            assert all(outcome.source == "run" for outcome in outcomes)
            # No shared cache and generous leases: exactly-once execution,
            # however the work sharded across however many workers.
            assert sum(counts) == len(jobs)
        finally:
            shutil.rmtree(root, ignore_errors=True)
