"""Unit tests for the cache hierarchy timing model."""

import pytest

from repro.memory.cache import (
    CacheConfig,
    MemoryConfig,
    MemoryHierarchy,
    SetAssociativeCache,
)


class TestCacheConfig:
    def test_table1_geometry(self):
        config = CacheConfig()
        assert config.size_bytes == 32 * 1024
        assert config.associativity == 4
        assert config.num_sets == 128

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, associativity=3, line_bytes=64)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(hit_latency=-1)


class TestSetAssociativeCache:
    def test_first_access_misses_second_hits(self):
        cache = SetAssociativeCache()
        assert not cache.access(0x1000)
        assert cache.access(0x1000)

    def test_same_line_different_word_hits(self):
        cache = SetAssociativeCache()
        cache.access(0x1000)
        assert cache.access(0x1000 + 63)
        assert not cache.access(0x1000 + 64)

    def test_lru_eviction_within_set(self):
        config = CacheConfig(size_bytes=4 * 64, associativity=4, line_bytes=64)
        cache = SetAssociativeCache(config)  # one set, 4 ways
        for i in range(4):
            cache.access(i * 64)
        cache.access(0)  # touch line 0: now line 1 is LRU
        cache.access(4 * 64)  # evicts line 1
        assert cache.access(0)
        assert not cache.access(64)

    def test_hit_rate(self):
        cache = SetAssociativeCache()
        cache.access(0)
        cache.access(0)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_hit_rate_empty(self):
        assert SetAssociativeCache().hit_rate == 0.0

    def test_capacity_conflict_behaviour(self):
        cache = SetAssociativeCache()  # 32KB
        # Touch 64KB worth of lines, then re-touch: all must miss again.
        lines = range(0, 64 * 1024, 64)
        for addr in lines:
            cache.access(addr)
        assert not cache.access(0)


class TestMemoryHierarchy:
    def test_l1_hit_latency(self):
        memory = MemoryHierarchy()
        memory.load_latency(0)
        assert memory.load_latency(0) == 2

    def test_infinite_l2_miss_latency(self):
        memory = MemoryHierarchy()
        assert memory.load_latency(0) == 20  # cold miss goes to L2

    def test_finite_l2_and_dram(self):
        config = MemoryConfig(
            l2=CacheConfig(size_bytes=256 * 1024, associativity=8, line_bytes=64,
                           hit_latency=20),
            memory_latency=200,
        )
        memory = MemoryHierarchy(config)
        assert memory.load_latency(0) == 200  # cold: misses L1 and L2
        assert memory.load_latency(0) == 2  # now in L1
        # Evict from L1 but not L2, then re-access: L2 hit.
        for addr in range(64, 64 + 64 * 1024, 64):
            memory.load_latency(addr)
        assert memory.load_latency(0) == 20

    def test_store_allocates_for_later_loads(self):
        memory = MemoryHierarchy()
        memory.store_access(0x2000)
        assert memory.load_latency(0x2000) == 2
