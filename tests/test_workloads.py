"""Workload-suite tests: every kernel assembles, runs, and exhibits the
dataflow feature it was designed to substitute for."""

import pytest

from repro.frontend.branch_predictor import (
    GshareBranchPredictor,
    annotate_mispredictions,
)
from repro.memory.cache import MemoryHierarchy
from repro.vm.isa import OpClass
from repro.workloads.suite import SUITE, get_kernel, suite_names
from repro.workloads.common import random_cycle
from repro.util.rng import seeded_rng


@pytest.fixture(scope="module")
def traces():
    return {spec.name: spec.generate(6000) for spec in SUITE}


class TestSuiteRegistry:
    def test_twelve_benchmarks(self):
        assert len(SUITE) == 12

    def test_paper_names(self):
        assert suite_names() == [
            "bzip2", "crafty", "eon", "gap", "gcc", "gzip",
            "mcf", "parser", "perl", "twolf", "vortex", "vpr",
        ]

    def test_lookup(self):
        assert get_kernel("vpr").name == "vpr"
        with pytest.raises(KeyError):
            get_kernel("specfp")


class TestAllKernelsRun:
    @pytest.mark.parametrize("name", suite_names())
    def test_generates_requested_length(self, traces, name):
        assert len(traces[name]) == 6000

    @pytest.mark.parametrize("name", suite_names())
    def test_deterministic_per_seed(self, name):
        spec = get_kernel(name)
        a = spec.generate(500, seed=3)
        b = spec.generate(500, seed=3)
        assert [(t.pc, t.taken, t.mem_addr) for t in a] == [
            (t.pc, t.taken, t.mem_addr) for t in b
        ]

    @pytest.mark.parametrize("name", suite_names())
    def test_steady_state_loops(self, traces, name):
        # Kernels are infinite outer loops: the trace must never halt early.
        assert all(t.opcode != "halt" for t in traces[name])


class TestKernelCharacter:
    def test_gzip_is_serial(self, traces):
        # Low ILP: the hash-chain spine serializes execution.
        from repro.core.config import monolithic_machine
        from repro.core.simulator import ClusteredSimulator

        result = ClusteredSimulator(
            monolithic_machine(), max_cycles=1_000_000
        ).run(traces["gzip"][:3000])
        assert result.ipc < 3.0

    def test_vortex_is_high_ilp(self, traces):
        from repro.core.config import monolithic_machine
        from repro.core.simulator import ClusteredSimulator

        result = ClusteredSimulator(
            monolithic_machine(), max_cycles=1_000_000
        ).run(traces["vortex"][:3000])
        assert result.ipc > 4.0

    def test_mcf_misses_the_l1(self, traces):
        memory = MemoryHierarchy()
        misses = 0
        loads = 0
        for t in traces["mcf"]:
            if t.is_load:
                loads += 1
                if memory.load_latency(t.mem_addr) > 2:
                    misses += 1
        assert misses / loads > 0.3

    def test_bzip2_has_convergent_dyadics(self, traces):
        xors = [t for t in traces["bzip2"] if t.opcode == "xor"]
        assert xors and all(len(t.srcs) == 2 for t in xors)

    def test_mispredict_rates_spread(self, traces):
        rates = {}
        for name, trace in traces.items():
            missed = annotate_mispredictions(trace, GshareBranchPredictor())
            rates[name] = len(missed) / len(trace)
        assert rates["mcf"] < 0.005  # predictable
        assert rates["gcc"] > 0.02  # branchy
        assert max(rates.values()) > 5 * (min(rates.values()) + 1e-4)

    def test_eon_uses_fp(self, traces):
        fp = sum(1 for t in traces["eon"] if t.opclass is OpClass.FP)
        assert fp / len(traces["eon"]) > 0.2

    def test_vpr_spine_and_rib_share_source(self, traces):
        # Figure 7: the rib head and spine step both consume the cursor.
        loads = [t for t in traces["vpr"] if t.is_load]
        pcs = {t.pc for t in loads}
        assert len(pcs) == 2  # the 'a' and 'b' loads


class TestRandomCycle:
    def test_forms_single_cycle(self):
        rng = seeded_rng("cycle-test")
        nodes = list(range(10, 40))
        links = random_cycle(rng, nodes)
        seen = set()
        here = nodes[0]
        for __ in nodes:
            seen.add(here)
            here = links[here]
        assert seen == set(nodes)
        assert here == nodes[0]

    def test_rejects_tiny_input(self):
        with pytest.raises(ValueError):
            random_cycle(seeded_rng("x"), [1])
