"""Tests for multi-seed figure aggregation."""

import pytest

from repro.experiments.aggregate import average_figures, run_seeded
from repro.experiments.fig08 import run_figure8
from repro.experiments.figure import FigureData
from repro.workloads.suite import get_kernel


def make_figure(values, label="x"):
    figure = FigureData("F", "t", ["name", "v"])
    for i, value in enumerate(values):
        figure.add_row(f"{label}{i}", value)
    return figure


class TestAverageFigures:
    def test_numeric_cells_averaged(self):
        merged = average_figures(
            [make_figure([1.0, 3.0]), make_figure([3.0, 5.0])], seeds=(0, 1)
        )
        assert merged.rows[0][1] == pytest.approx(2.0)
        assert merged.rows[1][1] == pytest.approx(4.0)

    def test_labels_preserved(self):
        merged = average_figures([make_figure([1.0]), make_figure([2.0])], (0, 1))
        assert merged.rows[0][0] == "x0"

    def test_spread_note_appended(self):
        merged = average_figures([make_figure([1.0]), make_figure([2.0])], (0, 1))
        assert "spread" in merged.notes[-1]

    def test_mismatched_row_counts_align_by_label(self):
        # Figure 15's available-ILP bins differ per seed: rows present in
        # only some seeds are averaged over the seeds that have them.
        merged = average_figures(
            [make_figure([1.0]), make_figure([3.0, 2.0])], (0, 1)
        )
        assert [row[0] for row in merged.rows] == ["x0", "x1"]
        assert merged.rows[0][1] == pytest.approx(2.0)
        assert merged.rows[1][1] == pytest.approx(2.0)

    def test_mismatched_rows_with_duplicate_labels_rejected(self):
        ambiguous = FigureData("F", "t", ["name", "v"])
        ambiguous.add_row("x0", 1.0)
        ambiguous.add_row("x0", 2.0)
        with pytest.raises(ValueError):
            average_figures([make_figure([1.0]), ambiguous], (0, 1))

    def test_mismatched_headers_rejected(self):
        other = FigureData("F", "t", ["name", "w"])
        other.add_row("x0", 1.0)
        with pytest.raises(ValueError):
            average_figures([make_figure([1.0]), other], (0, 1))

    def test_mismatched_labels_rejected(self):
        with pytest.raises(ValueError):
            average_figures(
                [make_figure([1.0], "a"), make_figure([1.0], "b")], (0, 1)
            )

    def test_nan_cells_skipped(self):
        a = make_figure([float("nan")])
        b = make_figure([2.0])
        merged = average_figures([a, b], (0, 1))
        assert merged.rows[0][1] == pytest.approx(2.0)


class TestRunSeeded:
    def test_end_to_end_small(self):
        merged = run_seeded(
            run_figure8,
            seeds=(0, 1),
            instructions=1200,
            benchmarks=[get_kernel("gcc")],
        )
        assert "mean of 2 seeds" in merged.title
        assert sum(merged.column("percent")) == pytest.approx(100.0, abs=0.01)

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            run_seeded(run_figure8, seeds=())
