"""Steering-policy behaviour tests (the paper's policy stack)."""

from repro.core.config import clustered_machine
from repro.core.instruction import DispatchReason, InFlight, SteerCause
from repro.core.rename import Dependences
from repro.core.simulator import ClusteredSimulator
from repro.core.steering.base import least_loaded_cluster, structural_stall
from repro.core.steering.dependence import (
    CriticalitySteering,
    CriticalitySteeringConfig,
    DependenceSteering,
)
from repro.workloads.patterns import divergent_tree, serial_chain
from repro.vm.isa import OpClass
from repro.vm.trace import DynamicInstruction


class FakeMachine:
    """Minimal MachineView for policy unit tests."""

    def __init__(self, num_clusters=4, window=4, fwd=2, now=100):
        self.num_clusters = num_clusters
        self.forwarding_latency = fwd
        self.now = now
        self.free = [window] * num_clusters
        self.load = [0] * num_clusters
        self.records = {}

    def window_free(self, cluster):
        return self.free[cluster]

    def cluster_load(self, cluster):
        return self.load[cluster]

    def record(self, index):
        return self.records[index]


def make_inflight(index, deps=(), mem_dep=None, pc=None, loc=0.0, critical=False):
    instr = DynamicInstruction(
        index=index,
        pc=pc if pc is not None else index,
        opcode="add",
        opclass=OpClass.INT_ALU,
        dest=1,
        srcs=(1,),
        next_pc=index + 1,
    )
    rec = InFlight(instr, Dependences(tuple(deps), mem_dep))
    rec.loc = loc
    rec.predicted_critical = critical
    return rec


def add_producer(machine, index, cluster, complete_time=-1, loc=0.0, critical=False):
    rec = make_inflight(index, loc=loc, critical=critical)
    rec.cluster = cluster
    rec.complete_time = complete_time
    machine.records[index] = rec
    return rec


class TestLeastLoaded:
    def test_prefers_lowest_load(self):
        machine = FakeMachine()
        machine.load = [3, 1, 2, 5]
        assert least_loaded_cluster(machine) == 1

    def test_skips_full_windows(self):
        machine = FakeMachine()
        machine.load = [3, 1, 2, 5]
        machine.free[1] = 0
        assert least_loaded_cluster(machine) == 2

    def test_none_when_all_full(self):
        machine = FakeMachine()
        machine.free = [0, 0, 0, 0]
        assert least_loaded_cluster(machine) is None
        decision = structural_stall(machine)
        assert decision.is_stall
        assert decision.stall_reason is DispatchReason.CLUSTER_FULL


class TestDependenceSteering:
    def test_collocates_with_in_flight_producer(self):
        machine = FakeMachine()
        add_producer(machine, 5, cluster=2)
        consumer = make_inflight(10, deps=(5,))
        decision = DependenceSteering().choose(consumer, machine)
        assert decision.cluster == 2
        assert decision.cause is SteerCause.PRODUCER

    def test_completed_producer_ignored(self):
        machine = FakeMachine(now=100)
        add_producer(machine, 5, cluster=2, complete_time=50)  # long done
        machine.load = [0, 7, 7, 7]
        consumer = make_inflight(10, deps=(5,))
        decision = DependenceSteering().choose(consumer, machine)
        assert decision.cluster == 0
        assert decision.cause is SteerCause.NO_PRODUCER

    def test_recently_completed_producer_still_attracts(self):
        # Value not yet broadcast: completing at now means remote clusters
        # see it only after the forwarding latency.
        machine = FakeMachine(now=100, fwd=2)
        add_producer(machine, 5, cluster=2, complete_time=100)
        consumer = make_inflight(10, deps=(5,))
        decision = DependenceSteering().choose(consumer, machine)
        assert decision.cluster == 2

    def test_dyadic_cause_when_producers_split(self):
        machine = FakeMachine()
        add_producer(machine, 5, cluster=1)
        add_producer(machine, 6, cluster=3)
        consumer = make_inflight(10, deps=(5, 6))
        decision = DependenceSteering().choose(consumer, machine)
        assert decision.cause is SteerCause.DYADIC
        assert decision.cluster == 3  # youngest producer preferred

    def test_second_producer_cluster_when_first_full(self):
        machine = FakeMachine()
        add_producer(machine, 5, cluster=1)
        add_producer(machine, 6, cluster=3)
        machine.free[3] = 0
        consumer = make_inflight(10, deps=(5, 6))
        decision = DependenceSteering().choose(consumer, machine)
        assert decision.cluster == 1

    def test_load_balances_when_producer_cluster_full(self):
        machine = FakeMachine()
        add_producer(machine, 5, cluster=2)
        machine.free[2] = 0
        machine.load = [4, 1, 9, 3]
        consumer = make_inflight(10, deps=(5,))
        decision = DependenceSteering().choose(consumer, machine)
        assert decision.cluster == 1
        assert decision.cause is SteerCause.LOAD_BALANCE_FULL


class TestFocusedSteering:
    def test_critical_producer_preferred_over_younger(self):
        machine = FakeMachine()
        add_producer(machine, 5, cluster=1, critical=True)
        add_producer(machine, 6, cluster=3, critical=False)
        consumer = make_inflight(10, deps=(5, 6))
        policy = CriticalitySteering(CriticalitySteeringConfig(preference="binary"))
        decision = policy.choose(consumer, machine)
        assert decision.cluster == 1

    def test_loc_preference_picks_highest_loc(self):
        machine = FakeMachine()
        add_producer(machine, 5, cluster=1, loc=0.9)
        add_producer(machine, 6, cluster=3, loc=0.1)
        consumer = make_inflight(10, deps=(5, 6))
        policy = CriticalitySteering(CriticalitySteeringConfig(preference="loc"))
        decision = policy.choose(consumer, machine)
        assert decision.cluster == 1


class TestStallOverSteer:
    def make_policy(self, threshold=0.30):
        return CriticalitySteering(
            CriticalitySteeringConfig(
                preference="loc", stall_over_steer=True,
                stall_loc_threshold=threshold,
            )
        )

    def test_high_loc_consumer_stalls_when_producer_cluster_full(self):
        machine = FakeMachine()
        add_producer(machine, 5, cluster=2, loc=0.9)
        machine.free[2] = 0
        consumer = make_inflight(10, deps=(5,), loc=0.8)
        decision = self.make_policy().choose(consumer, machine)
        assert decision.is_stall
        assert decision.stall_reason is DispatchReason.STEER_STALL
        assert decision.blocking_cluster == 2

    def test_low_loc_consumer_load_balances(self):
        machine = FakeMachine()
        add_producer(machine, 5, cluster=2, loc=0.9)
        machine.free[2] = 0
        consumer = make_inflight(10, deps=(5,), loc=0.1)
        decision = self.make_policy().choose(consumer, machine)
        assert not decision.is_stall
        assert decision.cause is SteerCause.LOAD_BALANCE_FULL

    def test_threshold_is_inclusive(self):
        machine = FakeMachine()
        add_producer(machine, 5, cluster=2, loc=0.9)
        machine.free[2] = 0
        consumer = make_inflight(10, deps=(5,), loc=0.30)
        decision = self.make_policy().choose(consumer, machine)
        assert decision.is_stall


class TestProactiveLoadBalancing:
    def make_policy(self):
        return CriticalitySteering(
            CriticalitySteeringConfig(
                preference="loc", stall_over_steer=True, proactive=True
            )
        )

    def test_second_consumer_balanced_away(self):
        machine = FakeMachine()
        producer = add_producer(machine, 5, cluster=2, loc=0.9)
        policy = self.make_policy()
        first = make_inflight(10, deps=(5,), loc=0.01)
        second = make_inflight(11, deps=(5,), pc=11, loc=0.01)
        d1 = policy.choose(first, machine)
        assert d1.cluster == 2
        d2 = policy.choose(second, machine)
        assert d2.cause is SteerCause.PROACTIVE
        assert d2.cluster != 2 or machine.load[2] == min(machine.load)

    def test_critical_consumer_never_balanced(self):
        # The Section 7 override: LoC > 5% and at least half the producer's.
        machine = FakeMachine()
        add_producer(machine, 5, cluster=2, loc=0.6)
        policy = self.make_policy()
        first = make_inflight(10, deps=(5,), loc=0.01)
        critical_consumer = make_inflight(11, deps=(5,), pc=11, loc=0.5)
        policy.choose(first, machine)
        decision = policy.choose(critical_consumer, machine)
        assert decision.cluster == 2
        assert decision.cause is not SteerCause.PROACTIVE

    def test_retire_learning_tags_balance_candidates(self):
        machine = FakeMachine()
        add_producer(machine, 5, cluster=2, loc=0.9)
        policy = self.make_policy()
        weak = make_inflight(10, deps=(5,), pc=77, loc=0.02)
        strong = make_inflight(11, deps=(5,), pc=88, loc=0.9)
        policy.choose(weak, machine)
        policy.choose(strong, machine)
        # Retire the weak consumer twice: it was never the most critical.
        policy.on_commit(weak)
        policy.on_commit(weak)
        assert policy._balance_candidates[77].predict()


class TestEndToEndDivergentTree:
    def test_proactive_spreads_divergent_consumers(self):
        # Figure 12/13: with 1-wide clusters, steering all consumers to the
        # producer's cluster serializes parallel work.
        trace = divergent_tree(fanout=6, groups=60)
        config = clustered_machine(8)
        plain = ClusteredSimulator(
            config, steering=DependenceSteering(), max_cycles=100_000
        ).run(trace, mispredicted=frozenset())
        clusters_used = {r.cluster for r in plain.records}
        assert len(clusters_used) >= 2  # load-balance kicks in eventually

    def test_serial_chain_no_stall_deadlock(self):
        # Stall-over-steer on a pure serial chain must still make progress
        # (window drains one instruction per cycle).
        policy = CriticalitySteering(
            CriticalitySteeringConfig(preference="loc", stall_over_steer=True)
        )
        sim = ClusteredSimulator(
            clustered_machine(8), steering=policy, max_cycles=100_000
        )
        result = sim.run(serial_chain(300), mispredicted=frozenset())
        assert result.instructions == 300
