"""The declarative spec layer: round-trips, hash stability, registries.

Three families of guarantees:

* **Serialization** -- ``from_dict(to_dict(spec)) == spec`` for every
  spec type, through real JSON (hypothesis-driven);
* **Hash stability** -- semantically equal specs produce identical
  cache keys regardless of dict key order, defaulted-vs-explicit
  parameter spelling, preset-name-vs-expanded form, or cosmetic names;
* **Registries** -- presets build exactly what the legacy
  ``build_policy`` built, unknown kinds/params fail with messages that
  list the valid choices, and out-of-tree components plug in.

Plus the machine-geometry edge cases of Section 2.1 (resource rounding
on 1-wide clusters, invalid cluster counts failing at spec time) and the
checked-in ``specs/`` files staying in lock-step with the code.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    POLICY_NAMES,
    PRESETS,
    SPECS,
    CriticalitySteering,
    ExperimentSpec,
    MachineSpec,
    PolicySpec,
    PredictorSpec,
    RunJob,
    SchedulerSpec,
    SpecError,
    SteeringSpec,
    SweepSpec,
    Workbench,
    WorkloadSpec,
    build_policy,
    canonical_policy,
    clustered_machine,
    get_kernel,
    job_key,
    load_spec,
    policy_label,
    policy_names,
    register_steering,
    resolve_policy,
    run_spec,
    spec_hash,
    suite_names,
)
from repro.experiments import PLANS
from repro.specs.registry import PREDICTORS, SCHEDULERS, STEERING

ROOT = pathlib.Path(__file__).resolve().parents[1]


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

machine_specs = st.builds(
    MachineSpec,
    clusters=st.sampled_from([1, 2, 4, 8]),
    forwarding_latency=st.integers(min_value=0, max_value=8),
    forwarding_bandwidth=st.none() | st.integers(min_value=1, max_value=8),
    rob_size=st.none() | st.integers(min_value=128, max_value=512),
)

steering_specs = st.sampled_from(STEERING.names()).map(SteeringSpec)
scheduler_specs = st.sampled_from(SCHEDULERS.names()).map(SchedulerSpec)
predictor_specs = st.sampled_from(PREDICTORS.names()).map(PredictorSpec)

policy_specs = st.builds(
    PolicySpec,
    steering=steering_specs,
    scheduler=scheduler_specs,
    predictor=st.none() | predictor_specs,
    name=st.sampled_from(["", "x", "my policy"]),
)

workload_specs = st.builds(
    WorkloadSpec,
    kernel=st.sampled_from(suite_names()),
    instructions=st.none() | st.integers(min_value=500, max_value=5000),
    seed=st.none() | st.integers(min_value=0, max_value=3),
)

sweep_specs = st.builds(
    SweepSpec,
    machines=st.lists(machine_specs, min_size=1, max_size=2).map(tuple),
    policies=st.lists(
        st.sampled_from(sorted(PRESETS)) | policy_specs, min_size=1, max_size=2
    ).map(tuple),
    collect_ilp=st.booleans(),
    warm=st.booleans(),
)

experiment_specs = st.builds(
    ExperimentSpec,
    name=st.text(alphabet="abcdefgh_", min_size=1, max_size=12),
    sweeps=st.lists(sweep_specs, min_size=1, max_size=2).map(tuple),
    workloads=st.none()
    | st.lists(st.sampled_from(suite_names()), min_size=1, max_size=3, unique=True).map(
        lambda kernels: tuple(WorkloadSpec(k) for k in kernels)
    ),
    instructions=st.none() | st.integers(min_value=500, max_value=5000),
    seed=st.none() | st.integers(min_value=0, max_value=3),
    loc_mode=st.none() | st.sampled_from(["probabilistic", "exact"]),
    description=st.sampled_from(["", "a sweep"]),
)


def _json_roundtrip(data):
    """Through actual JSON text, so payloads must be JSON-serializable."""
    return json.loads(json.dumps(data))


def _reorder(data):
    """The same JSON value with every dict's key order reversed."""
    if isinstance(data, dict):
        return {k: _reorder(data[k]) for k in reversed(list(data))}
    if isinstance(data, list):
        return [_reorder(v) for v in data]
    return data


# ---------------------------------------------------------------------------
# Round-trips
# ---------------------------------------------------------------------------


class TestRoundTrips:
    @given(machine_specs)
    @settings(max_examples=50, deadline=None)
    def test_machine(self, spec):
        assert MachineSpec.from_dict(_json_roundtrip(spec.to_dict())) == spec

    @given(policy_specs)
    @settings(max_examples=50, deadline=None)
    def test_policy(self, spec):
        assert PolicySpec.from_dict(_json_roundtrip(spec.to_dict())) == spec

    @given(workload_specs)
    @settings(max_examples=50, deadline=None)
    def test_workload(self, spec):
        assert WorkloadSpec.from_dict(_json_roundtrip(spec.to_dict())) == spec

    @given(experiment_specs)
    @settings(max_examples=25, deadline=None)
    def test_experiment(self, spec):
        rebuilt = ExperimentSpec.from_dict(json.loads(spec.to_json()))
        assert rebuilt == spec
        # to_json is itself stable once through a round-trip.
        assert rebuilt.to_json() == spec.to_json()

    def test_experiment_schema_tag_checked(self):
        data = SPECS["figure2"]().to_dict()
        data["schema"] = "repro.experiment_spec/999"
        with pytest.raises(SpecError, match="schema"):
            ExperimentSpec.from_dict(data)

    def test_unknown_keys_rejected(self):
        with pytest.raises(SpecError, match="unknown"):
            MachineSpec.from_dict({"clusters": 4, "cache_size": 64})
        with pytest.raises(SpecError, match="unknown"):
            ExperimentSpec.from_dict(
                {"name": "x", "sweeps": [], "colour": "blue"}
            )


# ---------------------------------------------------------------------------
# Hash stability -- the cache-key contract
# ---------------------------------------------------------------------------


def _job(policy) -> RunJob:
    return RunJob(
        kernel="gcc",
        instructions=1000,
        seed=0,
        loc_mode="probabilistic",
        config=clustered_machine(4),
        policy=policy,
    )


class TestHashStability:
    @given(experiment_specs)
    @settings(max_examples=25, deadline=None)
    def test_key_order_is_irrelevant(self, spec):
        shuffled = ExperimentSpec.from_dict(_reorder(spec.to_dict()))
        assert spec_hash(shuffled) == spec_hash(spec)

    def test_defaults_spelled_or_omitted_hash_identically(self):
        terse = SteeringSpec("criticality", (("preference", "loc"),))
        verbose = SteeringSpec(
            "criticality",
            (
                ("preference", "loc"),
                ("stall_over_steer", False),
                ("stall_loc_threshold", 0.30),
                ("proactive", False),
                ("keep_min_loc", 0.05),
                ("keep_fraction", 0.5),
            ),
        )
        assert terse == verbose
        assert spec_hash(terse) == spec_hash(verbose)

    def test_int_literal_coerced_for_float_parameter(self):
        json_spelling = SteeringSpec("criticality", (("keep_fraction", 1),))
        python_spelling = SteeringSpec("criticality", (("keep_fraction", 1.0),))
        assert json_spelling == python_spelling
        assert dict(json_spelling.params)["keep_fraction"] == 1.0

    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_preset_name_and_expanded_spec_share_a_cache_key(self, name):
        expanded = dict(PRESETS[name].canonical_payload())
        expanded["name"] = "renamed for display"
        assert job_key(_job(name)) == job_key(_job(expanded))

    def test_cosmetic_name_never_reaches_the_cache_key(self):
        novel = {"steering": "dependence", "scheduler": "loc", "predictor": "chunked"}
        a = job_key(_job({**novel, "name": "alpha"}))
        b = job_key(_job({**novel, "name": "beta"}))
        assert a == b

    def test_machine_null_override_hashes_like_omitted(self):
        assert spec_hash(MachineSpec(4)) == spec_hash(
            MachineSpec(4, forwarding_bandwidth=None, rob_size=None)
        )


# ---------------------------------------------------------------------------
# Presets and the legacy build_policy contract
# ---------------------------------------------------------------------------


class TestPresets:
    def test_policy_names_are_the_papers_five(self):
        assert policy_names() == ("dependence", "focused", "l", "s", "p")
        assert tuple(POLICY_NAMES) == policy_names()

    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_preset_builds_what_build_policy_built(self, name):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old_steering, old_scheduler, old_needs = build_policy(name)
        new_steering, new_scheduler, new_needs = resolve_policy(name).build()
        assert type(new_steering) is type(old_steering)
        assert type(new_scheduler) is type(old_scheduler)
        assert new_needs == old_needs
        if isinstance(new_steering, CriticalitySteering):
            assert new_steering.config == old_steering.config

    def test_canonical_policy_collapses_preset_equal_specs(self):
        spec = resolve_policy(
            {
                "name": "call it anything",
                "steering": {"kind": "criticality", "params": {"preference": "loc"}},
                "scheduler": "loc",
                "predictor": "chunked",
            }
        )
        assert canonical_policy(spec) == "l"

    def test_canonical_policy_keeps_novel_compositions(self):
        out = canonical_policy(
            {"steering": "dependence", "scheduler": "loc", "predictor": "chunked"}
        )
        assert isinstance(out, PolicySpec)
        assert out.label == "dependence+loc"
        assert policy_label(out) == "dependence+loc"

    def test_unknown_policy_lists_presets(self):
        with pytest.raises(SpecError) as err:
            resolve_policy("telepathic")
        message = str(err.value)
        assert "telepathic" in message
        for name in policy_names():
            assert name in message

    def test_spec_error_is_a_value_error(self):
        assert issubclass(SpecError, ValueError)


# ---------------------------------------------------------------------------
# Registries
# ---------------------------------------------------------------------------


class TestRegistries:
    def test_unknown_kind_lists_registered(self):
        with pytest.raises(SpecError) as err:
            SteeringSpec("gradient_descent")
        message = str(err.value)
        assert "gradient_descent" in message
        assert "dependence" in message and "criticality" in message

    def test_unknown_parameter_lists_accepted(self):
        with pytest.raises(SpecError) as err:
            SteeringSpec("criticality", (("learning_rate", 0.1),))
        message = str(err.value)
        assert "learning_rate" in message
        assert "preference" in message

    def test_non_scalar_parameter_rejected(self):
        with pytest.raises(SpecError, match="scalar"):
            SteeringSpec("criticality", (("preference", ["loc"]),))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(SpecError, match="already registered"):
            register_steering("dependence")(lambda: None)

    def test_factory_signatures_validated_eagerly(self):
        with pytest.raises(SpecError, match="default"):
            register_steering("broken")(lambda window: None)
        with pytest.raises(SpecError, match="named"):
            register_steering("broken")(lambda **kwargs: None)
        assert "broken" not in STEERING

    def test_out_of_tree_component_plugs_in(self):
        @register_steering("round_robin_test")
        def build_round_robin(stride: int = 1):
            from repro.core.steering.simple import ModuloSteering

            return ModuloSteering()

        try:
            spec = resolve_policy(
                {"steering": "round_robin_test", "scheduler": "oldest"}
            )
            steering, scheduler, needs = spec.build()
            assert steering is not None and not needs
            assert dict(spec.steering.params) == {"stride": 1}
            # And it participates in cache keys like any in-tree kind.
            assert job_key(_job(spec)) != job_key(_job("dependence"))
        finally:
            STEERING.unregister("round_robin_test")
        with pytest.raises(SpecError):
            SteeringSpec("round_robin_test")


# ---------------------------------------------------------------------------
# Machine geometry (Section 2.1 resource rounding)
# ---------------------------------------------------------------------------


class TestMachineGeometry:
    def test_one_wide_clusters_keep_mem_port_and_fp_unit(self):
        cluster = MachineSpec(8).build().cluster
        # 4 mem ports and 4 FP units split 8 ways round *up* to 1 each
        # (Section 2.1, footnote 1), never to zero.
        assert cluster.issue_width == 1
        assert cluster.mem_ports == 1
        assert cluster.fp_ports == 1
        assert cluster.int_ports == 1
        assert cluster.window_size == 16

    def test_even_splits_divide_exactly(self):
        cluster = MachineSpec(2).build().cluster
        assert (
            cluster.issue_width,
            cluster.int_ports,
            cluster.fp_ports,
            cluster.mem_ports,
            cluster.window_size,
        ) == (4, 4, 2, 2, 64)

    def test_labels(self):
        assert MachineSpec(1).label == "1x8w"
        assert MachineSpec(4).label == "4x2w"
        assert MachineSpec(4).build().name == "4x2w"

    @pytest.mark.parametrize("clusters", [0, -1, 3, 5, 6, 7, 16])
    def test_invalid_cluster_counts_fail_at_spec_time(self, clusters):
        with pytest.raises(SpecError, match="divide"):
            MachineSpec(clusters)

    def test_negative_forwarding_latency_rejected(self):
        with pytest.raises(SpecError, match="negative"):
            MachineSpec(4, forwarding_latency=-1)

    def test_zero_forwarding_bandwidth_rejected(self):
        with pytest.raises(SpecError, match="bandwidth"):
            MachineSpec(4, forwarding_bandwidth=0)

    def test_rob_smaller_than_aggregate_window_rejected(self):
        with pytest.raises(SpecError, match="geometry"):
            MachineSpec(4, rob_size=64)

    def test_bool_is_not_a_cluster_count(self):
        with pytest.raises(SpecError):
            MachineSpec.from_dict(True)

    def test_from_config_inverts_build(self):
        for clusters in (1, 2, 4, 8):
            spec = MachineSpec(clusters, forwarding_latency=4)
            assert MachineSpec.from_config(spec.build()) == spec

    def test_hand_built_config_round_trips_per_cluster(self):
        # Pre-heterogeneity this geometry was "not expressible"; now any
        # config inverts through the per-cluster spelling.
        config = clustered_machine(4)
        odd = dataclasses.replace(
            config, cluster=dataclasses.replace(config.cluster, int_ports=7)
        )
        spec = MachineSpec.from_config(odd)
        assert not isinstance(spec.clusters, int)
        assert spec.build() == odd


# ---------------------------------------------------------------------------
# Experiment specs against the shipped figure plans
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def bench():
    return Workbench(
        instructions=1000,
        benchmarks=[get_kernel("vpr"), get_kernel("gzip")],
    )


class TestExperimentSpecs:
    def test_every_figure_spec_matches_its_plan(self, bench):
        for name, spec_fn in SPECS.items():
            spec = spec_fn()
            jobs = spec.jobs(bench)
            plan = PLANS[name](bench)
            assert set(jobs) == set(plan), name
            if name != "global_values":  # documented order change there
                assert jobs == plan, name

    def test_duplicate_workload_kernels_rejected(self):
        with pytest.raises(SpecError, match="more than once"):
            ExperimentSpec(
                name="dup",
                sweeps=(SweepSpec((MachineSpec(4),), ("l",)),),
                workloads=(
                    WorkloadSpec("vpr", instructions=1000),
                    WorkloadSpec("vpr", instructions=2000),
                ),
            )

    def test_workload_overrides_reach_the_jobs(self, bench):
        spec = ExperimentSpec(
            name="override",
            sweeps=(SweepSpec((MachineSpec(4),), ("l",)),),
            workloads=(WorkloadSpec("vpr", instructions=750, seed=2),),
            instructions=9999,
            seed=7,
        )
        (job,) = spec.jobs(bench)
        assert (job.kernel, job.instructions, job.seed) == ("vpr", 750, 2)

    def test_figure_link_mismatch_raises(self, bench):
        spec = ExperimentSpec(
            name="claims_figure2",
            figure="figure2",
            sweeps=(SweepSpec((MachineSpec(2),), ("dependence",)),),
        )
        with pytest.raises(SpecError, match="figure2"):
            run_spec(bench, spec)


# ---------------------------------------------------------------------------
# The checked-in specs/ directory
# ---------------------------------------------------------------------------


class TestCheckedInSpecs:
    def test_figure14_file_in_lockstep_with_code(self):
        path = ROOT / "specs" / "figure14.json"
        assert path.read_text() == SPECS["figure14"]().to_json(), (
            "specs/figure14.json drifted from spec_figure14(); regenerate "
            "with: python -m repro specs show figure14 > specs/figure14.json"
        )

    def test_hetero_sweep_file_in_lockstep_with_code(self):
        path = ROOT / "specs" / "hetero_sweep.json"
        assert path.read_text() == SPECS["hetero_sweep"]().to_json(), (
            "specs/hetero_sweep.json drifted from spec_hetero_sweep(); "
            "regenerate with: "
            "python -m repro specs show hetero_sweep > specs/hetero_sweep.json"
        )

    def test_custom_sweep_loads_and_plans(self, bench):
        spec = load_spec(ROOT / "specs" / "custom_sweep.json")
        assert spec.name == "dependence_loc_4x2w"
        jobs = spec.jobs(bench)
        # 3 kernels x 2 machines x 3 policies, no new Python anywhere.
        assert len(jobs) == 18
        labels = {policy_label(job.policy) for job in jobs}
        assert labels == {"dependence", "l", "dep+loc"}

    def test_custom_sweep_cli_end_to_end(self, tmp_path, capsys):
        from repro.experiments.runner import main

        argv = [
            "--spec",
            str(ROOT / "specs" / "custom_sweep.json"),
            "--instructions",
            "800",
            "--workers",
            "2",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--metrics",
            "--out",
            str(tmp_path / "out"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "dep+loc" in out
        assert "simulated=18" in out
        report_path = tmp_path / "out" / "dependence_loc_4x2w_report.json"
        report = json.loads(report_path.read_text())
        assert len(report["runs"]) == 18
        # A second invocation is served entirely from the cache.
        assert main(argv) == 0
        assert "simulated=0" in capsys.readouterr().out

    def test_broken_spec_file_exits_2(self, tmp_path, capsys):
        from repro.experiments.runner import main

        bad = tmp_path / "bad.json"
        bad.write_text('{"name": "x"}')
        assert main(["--spec", str(bad)]) == 2
        assert "bad spec" in capsys.readouterr().err
