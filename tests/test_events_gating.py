"""Unit tests for the operand-gating condition in event classification.

A forwarding 'event' (Figure 6b) must be counted only when the remote
operand actually determined readiness; these tests construct records by
hand to pin that logic down.
"""

from repro.analysis.events import classify_lost_cycle_events
from repro.core.instruction import InFlight, SteerCause
from repro.core.rename import Dependences
from repro.vm.isa import OpClass
from repro.vm.trace import DynamicInstruction


def make_record(
    index,
    dispatch=10,
    ready=11,
    issue=11,
    operand_avail=0,
    forwarded=False,
    cause=SteerCause.PRODUCER,
    predicted_critical=False,
):
    instr = DynamicInstruction(
        index=index, pc=index, opcode="add", opclass=OpClass.INT_ALU,
        dest=1, srcs=(1,), next_pc=index + 1,
    )
    rec = InFlight(instr, Dependences((max(0, index - 1),), None))
    rec.dispatch_time = dispatch
    rec.ready_time = ready
    rec.issue_time = issue
    rec.complete_time = issue + 1
    rec.commit_time = issue + 2
    rec.operand_avail = operand_avail
    rec.last_arriving_producer = index - 1 if index else None
    rec.critical_operand_forwarded = forwarded
    rec.steer_cause = cause
    rec.predicted_critical = predicted_critical
    rec.latency = 1
    return rec


def classify(records):
    flags = [True] * len(records)  # treat everything as critical-path
    return classify_lost_cycle_events(records, flags=flags)


class TestForwardingGating:
    def test_gating_forwarded_operand_counts(self):
        rec = make_record(
            1, dispatch=10, ready=15, issue=15, operand_avail=15,
            forwarded=True, cause=SteerCause.LOAD_BALANCE_FULL,
        )
        __, fwd = classify([rec])
        assert fwd.load_balance == 1

    def test_early_forwarded_operand_ignored(self):
        # Operand arrived before the instruction even entered the window:
        # the forwarding latency cost nothing.
        rec = make_record(
            1, dispatch=10, ready=11, issue=11, operand_avail=8,
            forwarded=True, cause=SteerCause.LOAD_BALANCE_FULL,
        )
        __, fwd = classify([rec])
        assert fwd.total == 0

    def test_dyadic_cause_classified(self):
        rec = make_record(
            1, dispatch=10, ready=15, issue=15, operand_avail=15,
            forwarded=True, cause=SteerCause.DYADIC,
        )
        __, fwd = classify([rec])
        assert fwd.dyadic == 1

    def test_other_cause_classified(self):
        rec = make_record(
            1, dispatch=10, ready=15, issue=15, operand_avail=15,
            forwarded=True, cause=SteerCause.PROACTIVE,
        )
        __, fwd = classify([rec])
        assert fwd.other == 1

    def test_non_critical_instructions_skipped(self):
        rec = make_record(
            1, dispatch=10, ready=15, issue=15, operand_avail=15,
            forwarded=True, cause=SteerCause.DYADIC,
        )
        __, fwd = classify_lost_cycle_events([rec], flags=[False])
        assert fwd.total == 0


class TestContentionClassification:
    def test_predicted_critical_bucket(self):
        rec = make_record(1, ready=11, issue=14, predicted_critical=True)
        contention, __ = classify([rec])
        assert contention.predicted_critical == 1
        assert contention.other == 0

    def test_other_bucket(self):
        rec = make_record(1, ready=11, issue=14, predicted_critical=False)
        contention, __ = classify([rec])
        assert contention.other == 1

    def test_no_event_without_wait(self):
        rec = make_record(1, ready=11, issue=11)
        contention, __ = classify([rec])
        assert contention.total == 0
