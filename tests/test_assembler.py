"""Unit tests for the mini-ISA assembler."""

import pytest

from repro.vm.assembler import AssemblyError, assemble
from repro.vm.isa import OpClass, parse_register, register_name


class TestParseRegister:
    def test_integer_registers(self):
        assert parse_register("r0") == 0
        assert parse_register("r31") == 31

    def test_fp_registers_offset(self):
        assert parse_register("f0") == 32
        assert parse_register("f15") == 47

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            parse_register("r32")
        with pytest.raises(ValueError):
            parse_register("f16")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_register("x3")

    def test_round_trip_names(self):
        assert register_name(parse_register("r17")) == "r17"
        assert register_name(parse_register("f3")) == "f3"


class TestAssemble:
    def test_three_address_op(self):
        prog = assemble("add r1, r2, r3\nhalt")
        instr = prog[0]
        assert instr.opcode == "add"
        assert instr.dest == 1
        assert instr.srcs == (2, 3)
        assert instr.opclass is OpClass.INT_ALU

    def test_immediate_op(self):
        prog = assemble("addi r1, r2, -5\nhalt")
        assert prog[0].imm == -5

    def test_memory_operand(self):
        prog = assemble("ld r1, 8(r2)\nhalt")
        instr = prog[0]
        assert instr.mem_offset == 8
        assert instr.mem_base == 2
        assert 2 in instr.srcs

    def test_store_sources_include_value_and_base(self):
        prog = assemble("st r1, 0(r2)\nhalt")
        assert set(prog[0].srcs) == {1, 2}

    def test_labels_resolve_forward_and_backward(self):
        prog = assemble(
            """
            top:
                br bottom
                add r1, r1, r2
            bottom:
                br top
            """
        )
        assert prog[0].target == 2
        assert prog[2].target == 0

    def test_label_on_same_line_as_instruction(self):
        prog = assemble("loop: addi r1, r1, 1\nbne r1, loop")
        assert prog.labels["loop"] == 0
        assert prog[1].target == 0

    def test_comments_stripped(self):
        prog = assemble("add r1, r2, r3  # a comment\nhalt")
        assert len(prog) == 2

    def test_mul_is_separate_class(self):
        prog = assemble("mul r1, r2, r3\nhalt")
        assert prog[0].opclass is OpClass.INT_MUL

    def test_branch_metadata(self):
        prog = assemble("loop: bne r1, loop")
        assert prog[0].is_branch
        assert prog[0].is_conditional_branch

    def test_unconditional_branch_not_conditional(self):
        prog = assemble("loop: br loop")
        assert prog[0].is_branch
        assert not prog[0].is_conditional_branch

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("br nowhere")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("a:\n add r1, r1, r1\na:\n halt")

    def test_unknown_opcode_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("frobnicate r1")

    def test_wrong_operand_count_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("add r1, r2")

    def test_empty_program_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("# only a comment\n")

    def test_fp_op_requires_fp_registers(self):
        with pytest.raises(AssemblyError):
            assemble("fadd r1, f1, f2\nhalt")
        with pytest.raises(AssemblyError):
            assemble("fadd f1, r1, f2\nhalt")

    def test_fp_load_base_must_be_integer(self):
        with pytest.raises(AssemblyError):
            assemble("fld f1, 0(f2)\nhalt")

    def test_fst_value_must_be_fp(self):
        with pytest.raises(AssemblyError):
            assemble("fst r1, 0(r2)\nhalt")

    def test_bad_memory_operand_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("ld r1, r2\nhalt")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblyError) as info:
            assemble("add r1, r2, r3\nbogus r1\nhalt")
        assert info.value.line_number == 2
