"""Regenerate ALL golden figure snapshots in one invocation.

Covers every reproduced figure (2, 4, 5, 6, 8, 14, 15).  Run
deliberately, and only when a change is *supposed* to alter results
(new timing model, policy fix, trace-generation change)::

    PYTHONPATH=src python tests/golden/regen.py

Commit the diff together with the change and a bump of
``repro.experiments.cache.CACHE_SCHEMA_VERSION``, so stale cache entries
and stale goldens retire at the same time.

The snapshots are small on purpose: 2000-instruction traces of two
kernels (one well-behaved, one convergent-dataflow outlier), which is
enough to pin every CPI cell while keeping ``tests/test_golden.py`` fast.
"""

from __future__ import annotations

import json
import pathlib

from repro.experiments import EXPERIMENTS
from repro.experiments.harness import Workbench
from repro.workloads.suite import get_kernel

GOLDEN_DIR = pathlib.Path(__file__).parent
INSTRUCTIONS = 2000
BENCHMARKS = ("gcc", "vpr")
SEED = 0
FIGURES = (
    "figure2",
    "figure4",
    "figure5",
    "figure6",
    "figure8",
    "figure14",
    "figure15",
)


def build_bench() -> Workbench:
    """The exact workbench the comparison test reconstructs."""
    return Workbench(
        instructions=INSTRUCTIONS,
        seed=SEED,
        benchmarks=[get_kernel(name) for name in BENCHMARKS],
    )


def main() -> None:
    bench = build_bench()
    for name in FIGURES:
        figure = EXPERIMENTS[name](bench)
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(figure.to_dict(), indent=2) + "\n")
        print(f"wrote {path} ({len(figure.rows)} rows)")


if __name__ == "__main__":
    main()
