"""Unit tests for branch prediction and the fetch timing model."""

import pytest

from repro.frontend.branch_predictor import (
    AlwaysTakenPredictor,
    GshareBranchPredictor,
    annotate_mispredictions,
)
from repro.frontend.fetch import FrontEndConfig, FrontEndModel
from repro.workloads.patterns import serial_chain
from repro.vm.isa import OpClass
from repro.vm.trace import DynamicInstruction


def branch(index, pc, taken):
    return DynamicInstruction(
        index=index,
        pc=pc,
        opcode="bne",
        opclass=OpClass.BRANCH,
        dest=None,
        srcs=(1,),
        is_branch=True,
        is_conditional_branch=True,
        taken=taken,
        next_pc=pc + 1,
    )


class TestGshare:
    def test_learns_constant_direction(self):
        predictor = GshareBranchPredictor()
        for __ in range(10):
            predictor.update(100, True)
        assert predictor.predict(100)

    def test_learns_alternating_pattern_through_history(self):
        predictor = GshareBranchPredictor(history_bits=8)
        # Train on a strict alternation; history disambiguates the phases.
        outcomes = [bool(i % 2) for i in range(400)]
        wrong_late = 0
        for i, outcome in enumerate(outcomes):
            if i > 300 and predictor.predict(100) != outcome:
                wrong_late += 1
            predictor.update(100, outcome)
        assert wrong_late == 0

    def test_random_data_mispredicts(self):
        from repro.util.rng import seeded_rng

        rng = seeded_rng("gshare-random")
        predictor = GshareBranchPredictor()
        wrong = 0
        n = 2000
        for __ in range(n):
            outcome = rng.random() < 0.5
            if predictor.predict(77) != outcome:
                wrong += 1
            predictor.update(77, outcome)
        assert wrong > n * 0.3  # unpredictable stays unpredictable

    def test_invalid_history_bits(self):
        with pytest.raises(ValueError):
            GshareBranchPredictor(history_bits=0)


class TestAnnotateMispredictions:
    def test_only_conditional_branches_counted(self):
        trace = serial_chain(10)  # no branches at all
        assert annotate_mispredictions(trace, GshareBranchPredictor()) == set()

    def test_always_taken_predictor_misses_not_taken(self):
        trace = [branch(0, 5, taken=False), branch(1, 5, taken=True)]
        missed = annotate_mispredictions(trace, AlwaysTakenPredictor())
        assert missed == {0}

    def test_none_predictor_is_oracle(self):
        trace = [branch(0, 5, taken=False)]
        assert annotate_mispredictions(trace, None) == set()


class TestFrontEndModel:
    def test_nothing_before_pipeline_fills(self):
        trace = serial_chain(20)
        frontend = FrontEndModel(trace, set(), FrontEndConfig(depth_to_dispatch=13))
        frontend.tick(12)
        assert frontend.peek() is None

    def test_width_limits_per_cycle_delivery(self):
        trace = serial_chain(20)
        frontend = FrontEndModel(trace, set(), FrontEndConfig(width=8))
        frontend.tick(13)
        delivered = 0
        while frontend.peek() is not None:
            frontend.pop()
            delivered += 1
        assert delivered == 8

    def test_fetch_blocks_at_mispredicted_branch(self):
        trace = serial_chain(20)
        frontend = FrontEndModel(trace, {3}, FrontEndConfig())
        frontend.tick(13)
        count = 0
        while frontend.peek() is not None:
            frontend.pop()
            count += 1
        assert count == 4  # instructions 0..3 inclusive
        frontend.tick(14)
        assert frontend.peek() is None
        assert frontend.blocked_on == 3

    def test_redirect_resumes_after_depth(self):
        config = FrontEndConfig(depth_to_dispatch=13)
        trace = serial_chain(20)
        frontend = FrontEndModel(trace, {3}, config)
        frontend.tick(13)
        while frontend.peek() is not None:
            frontend.pop()
        frontend.resolve_misprediction(3, when=20)
        frontend.tick(32)
        assert frontend.peek() is None  # 20 + 13 = 33
        frontend.tick(33)
        assert frontend.peek() is not None
        assert frontend.peek().index == 4

    def test_first_after_redirect_is_tagged(self):
        trace = serial_chain(20)
        frontend = FrontEndModel(trace, {3}, FrontEndConfig())
        frontend.tick(13)
        while frontend.peek() is not None:
            frontend.pop()
        frontend.resolve_misprediction(3, when=20)
        frontend.tick(40)
        assert frontend.redirect_source(4) == 3
        frontend.pop()
        assert frontend.redirect_source(5) is None

    def test_taken_branch_ends_fetch_group(self):
        trace = [branch(0, 0, taken=True)] + serial_chain(10)
        # Re-index the chain after the branch.
        chain = [
            DynamicInstruction(
                index=i + 1,
                pc=t.pc + 1,
                opcode=t.opcode,
                opclass=t.opclass,
                dest=t.dest,
                srcs=t.srcs,
                next_pc=t.next_pc,
            )
            for i, t in enumerate(serial_chain(10))
        ]
        trace = [branch(0, 0, taken=True)] + chain
        frontend = FrontEndModel(trace, set(), FrontEndConfig())
        frontend.tick(13)
        count = 0
        while frontend.peek() is not None:
            frontend.pop()
            count += 1
        assert count == 1  # the taken branch ended the group

    def test_buffer_backpressure(self):
        trace = serial_chain(64)
        config = FrontEndConfig(buffer_size=8, width=8)
        frontend = FrontEndModel(trace, set(), config)
        frontend.tick(13)
        frontend.tick(14)  # buffer already full: no more fetched
        count = 0
        while frontend.peek() is not None:
            frontend.pop()
            count += 1
        assert count == 8

    def test_exhausted(self):
        trace = serial_chain(3)
        frontend = FrontEndModel(trace, set(), FrontEndConfig())
        assert not frontend.exhausted
        frontend.tick(13)
        while frontend.peek() is not None:
            frontend.pop()
        assert frontend.exhausted

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            FrontEndConfig(width=0)
