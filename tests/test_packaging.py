"""Repository and distribution hygiene: bytecode caches never ship.

The latent failure mode: a ``__pycache__`` directory created by an
editable install or an interrupted test run gets committed (or swept
into an sdist), and suddenly the "pure source" artifact carries stale
interpreter-specific bytecode.  These tests pin the guards -- the
tracked tree is cache-free, ``.gitignore`` keeps it that way, and
``MANIFEST.in`` excludes caches from sdists.  CI's ``package`` job does
the expensive end-to-end check (build sdist + wheel, assert neither
archive contains a cache entry); see ``.github/workflows/ci.yml``.
"""

from __future__ import annotations

import pathlib
import shutil
import subprocess

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent


def _tracked_files() -> list[str]:
    if shutil.which("git") is None or not (REPO / ".git").exists():
        pytest.skip("not a git checkout")
    proc = subprocess.run(
        ["git", "ls-files"], cwd=REPO, capture_output=True, text=True, check=True
    )
    return proc.stdout.splitlines()


def test_no_bytecode_caches_are_tracked():
    # Component-wise, not substring: any tracked path that *is* or lives
    # under a ``__pycache__`` directory fails, as does any compiled
    # artifact regardless of where it hides.
    offenders = [
        path
        for path in _tracked_files()
        if "__pycache__" in pathlib.PurePosixPath(path).parts
        or path.endswith((".pyc", ".pyo", ".pyd"))
    ]
    assert offenders == []


def test_gitignore_covers_cache_and_build_artifacts():
    patterns = (REPO / ".gitignore").read_text().splitlines()
    for required in ("__pycache__/", "*.py[cod]", "dist/", "*.egg-info/"):
        assert required in patterns


def test_manifest_excludes_caches_from_sdists():
    manifest = (REPO / "MANIFEST.in").read_text()
    assert "global-exclude __pycache__" in manifest
    assert "*.py[cod]" in manifest


def test_source_tree_pycache_is_untracked_even_if_present():
    # __pycache__ dirs routinely exist on disk after running the suite;
    # git must be ignoring every one of them.
    if shutil.which("git") is None or not (REPO / ".git").exists():
        pytest.skip("not a git checkout")
    proc = subprocess.run(
        [
            "git",
            "status",
            "--porcelain",
            "--ignored=matching",
            "--untracked-files=all",
        ],
        cwd=REPO,
        capture_output=True,
        text=True,
        check=True,
    )
    unignored = [
        line
        for line in proc.stdout.splitlines()
        if "__pycache__" in line and not line.startswith("!!")
    ]
    assert unignored == []
