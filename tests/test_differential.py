"""Differential oracle: every simulation backend against every other.

The event-driven :class:`~repro.core.simulator.ClusteredSimulator` must be
*bit-identical* to :class:`~repro.core.reference.ReferenceSimulator` -- not
approximately equal: every per-instruction timestamp, provenance enum,
waiter edge, counter and the ILP profile must match, which is exactly what
:func:`repro.core.serialize.results_identical` (canonical-JSON compare)
checks.  The same contract binds the batched sweep engine
(:func:`repro.core.batched.simulate_batched`) under a *matched* warm-up
protocol: when both engines warm their predictors on the same
config/policy and then measure, their results must be bit-identical too
(the production ``sim="batched"`` path differs from the event path only
in *which* run does the warming -- one canonical pass per trace -- never
in engine timing).  The matrix covers:

* every policy stack of Figure 14 plus readiness-aware steering, on
  1/2/4/8 clusters, with warm predictors and a live trainer;
* the same Figure 14 stacks through the batched engine, plus a custom
  (non-preset) stack the fast path must lower correctly;
* stress configurations (tiny windows, long forwarding latency) that
  maximize stalls, port conflicts and idle-skip opportunities;
* frozen-predictor runs (the benchmark and batched-measurement
  methodology);
* hypothesis-driven (kernel, seed, length, policy, clusters) combinations,
  so every run of the suite explores traces the fixed matrix does not.

A serialize round-trip is asserted along the way, so "identical" is also
stable under persistence (the run cache stores exactly this form).
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.batched import (
    ArrayPredictorState,
    TracePrecompute,
    simulate_batched,
)
from repro.core.config import (
    MachineConfig,
    clustered_machine,
    fat_thin_machine,
    fp_less_thin_machine,
    monolithic_machine,
    slow_divider_machine,
)
from repro.core.reference import ReferenceSimulator
from repro.core.simulator import ClusteredSimulator
from repro.core.serialize import (
    result_from_dict,
    result_to_dict,
    results_identical,
)
from repro.criticality.loc import LocPredictor, PredictorSuite
from repro.criticality.trainer import ChunkedCriticalityTrainer
from repro.experiments.batch import batchable_config, fast_policy
from repro.experiments.harness import POLICY_NAMES
from repro.experiments.parallel import prepare_workload
from repro.specs import MachineSpec, spec_hash
from repro.specs.policy import (
    PolicySpec,
    PredictorSpec,
    SchedulerSpec,
    SteeringSpec,
    resolve_policy,
)

INSTRUCTIONS = 700
CLUSTER_COUNTS = (1, 2, 4, 8)


def _machine(clusters: int, forwarding_latency: int = 2):
    if clusters == 1:
        return monolithic_machine()
    return clustered_machine(clusters, forwarding_latency=forwarding_latency)


def _stress(clusters: int, forwarding_latency: int = 4, window: int = 4):
    """Tiny windows + slow forwarding: maximal stalling and idle skipping."""
    base = clustered_machine(clusters, forwarding_latency=forwarding_latency)
    return dataclasses.replace(
        base, cluster=dataclasses.replace(base.cluster, window_size=window)
    )


@pytest.fixture(scope="module")
def workloads():
    cache: dict[tuple[str, int, int], object] = {}

    def get(kernel: str, instructions: int = INSTRUCTIONS, seed: int = 0):
        key = (kernel, instructions, seed)
        if key not in cache:
            cache[key] = prepare_workload(kernel, instructions, seed)
        return cache[key]

    return get


def _policy_pair(policy: str):
    """Fresh (steering, scheduler, needs_predictors); knows 'readiness'."""
    return resolve_policy(policy).build()


def run_one(
    sim_cls,
    prepared,
    config,
    policy,
    collect_ilp: bool = True,
    live_trainer: bool = True,
):
    """One warm-then-measure run of ``sim_cls`` (the harness methodology)."""
    max_cycles = 64 * len(prepared.trace) + 10_000
    steering, scheduler, needs_predictors = _policy_pair(policy)
    suite = trainer = None
    if needs_predictors:
        suite = PredictorSuite(
            loc_predictor=LocPredictor(mode="probabilistic", seed=0)
        )
        trainer = ChunkedCriticalityTrainer(suite)
        warm = sim_cls(
            config,
            steering=steering,
            scheduler=scheduler,
            predictors=suite,
            trainer=trainer,
            max_cycles=max_cycles,
        )
        warm.run(prepared.trace, prepared.dependences, prepared.mispredicted)
        steering, scheduler, __ = _policy_pair(policy)
    sim = sim_cls(
        config,
        steering=steering,
        scheduler=scheduler,
        predictors=suite,
        trainer=trainer if live_trainer else None,
        collect_ilp=collect_ilp,
        max_cycles=max_cycles,
    )
    return sim.run(prepared.trace, prepared.dependences, prepared.mispredicted)


def run_both(
    prepared, config, policy: str, collect_ilp: bool = True, live_trainer: bool = True
):
    """Run both simulators with identical warm predictors.

    ``live_trainer=False`` freezes the warmed predictor suite for the
    measured runs (the benchmark-harness methodology), which exercises the
    optimized simulator's frozen-priority precompute path.
    """
    return [
        run_one(sim_cls, prepared, config, policy, collect_ilp, live_trainer)
        for sim_cls in (ClusteredSimulator, ReferenceSimulator)
    ]


def run_batched_matched(
    prepared, config, policy, collect_ilp: bool = True, live_trainer: bool = True
):
    """The batched engine under :func:`run_one`'s exact warm-up protocol.

    Warm on the *same* config/policy (not the production canonical pass),
    then measure -- with live training or frozen, mirroring
    ``live_trainer``.  Under this matched protocol the batched engine
    must be bit-identical to the event simulator.
    """
    fast = fast_policy(policy)
    assert fast is not None, f"policy {policy!r} should lower to the fast path"
    max_cycles = 64 * len(prepared.trace) + 10_000
    pre = TracePrecompute.from_prepared(prepared)
    suite = None
    if fast.needs_predictors:
        suite = ArrayPredictorState(pre, "probabilistic", 0)
        simulate_batched(
            pre,
            config,
            fast,
            predictors=suite,
            live_training=True,
            max_cycles=max_cycles,
            materialize=False,
        )
    return simulate_batched(
        pre,
        config,
        fast,
        predictors=suite,
        live_training=live_trainer,
        collect_ilp=collect_ilp,
        max_cycles=max_cycles,
    )


def assert_bit_identical(event, reference, context: str):
    __tracebackhide__ = True
    if not results_identical(event, reference):
        want = result_to_dict(reference)
        got = result_to_dict(event)
        for i, (w, g) in enumerate(zip(want["records"], got["records"])):
            if w != g:
                diff = {k: (w[k], g[k]) for k in w if w[k] != g[k]}
                pytest.fail(f"{context}: first divergent record {i}: {diff}")
        top = {
            k: (want[k], got[k])
            for k in want
            if k != "records" and want[k] != got[k]
        }
        pytest.fail(f"{context}: top-level divergence: {top}")


# ---------------------------------------------------------------------------
# The fixed policy matrix
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("clusters", CLUSTER_COUNTS)
@pytest.mark.parametrize("policy", POLICY_NAMES + ("readiness",))
def test_policy_matrix_bit_identical(workloads, policy, clusters):
    prepared = workloads("gcc")
    event, reference = run_both(prepared, _machine(clusters), policy)
    assert_bit_identical(event, reference, f"gcc {policy} {clusters}cl")


@pytest.mark.parametrize("clusters", (2, 8))
@pytest.mark.parametrize("policy", ("dependence", "s", "p", "readiness"))
def test_stress_configs_bit_identical(workloads, policy, clusters):
    """Tiny windows and slow forwarding exercise every stall path."""
    prepared = workloads("mcf")
    event, reference = run_both(prepared, _stress(clusters), policy)
    assert_bit_identical(event, reference, f"mcf {policy} {clusters}cl stress")


@pytest.mark.parametrize("clusters", (2, 8))
@pytest.mark.parametrize("policy", ("focused", "l", "s", "p"))
def test_frozen_predictors_bit_identical(workloads, policy, clusters):
    """Warm suite, no trainer: the benchmark methodology.  Exercises the
    optimized simulator's frozen-priority precompute path."""
    prepared = workloads("gzip")
    event, reference = run_both(
        prepared, _machine(clusters), policy, live_trainer=False
    )
    assert_bit_identical(event, reference, f"gzip {policy} {clusters}cl frozen")


# ---------------------------------------------------------------------------
# The batched sweep engine under the matched warm-up protocol
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("clusters", CLUSTER_COUNTS)
@pytest.mark.parametrize("policy", POLICY_NAMES)
def test_batched_policy_matrix_bit_identical(workloads, policy, clusters):
    """Every Figure 14 stack, every cluster count: batched == event."""
    prepared = workloads("gcc")
    event = run_one(ClusteredSimulator, prepared, _machine(clusters), policy)
    batched = run_batched_matched(prepared, _machine(clusters), policy)
    assert_bit_identical(batched, event, f"gcc {policy} {clusters}cl batched")


@pytest.mark.parametrize("clusters", (2, 8))
@pytest.mark.parametrize("policy", ("dependence", "s", "p"))
def test_batched_stress_configs_bit_identical(workloads, policy, clusters):
    """Tiny windows and slow forwarding through the batched engine."""
    prepared = workloads("mcf")
    event = run_one(ClusteredSimulator, prepared, _stress(clusters), policy)
    batched = run_batched_matched(prepared, _stress(clusters), policy)
    assert_bit_identical(
        batched, event, f"mcf {policy} {clusters}cl stress batched"
    )


@pytest.mark.parametrize("clusters", (2, 8))
@pytest.mark.parametrize("policy", ("focused", "l", "s", "p"))
def test_batched_frozen_predictors_bit_identical(workloads, policy, clusters):
    """Warm suite, frozen measurement: the production batched methodology's
    measurement shape (and the frozen-priority tabulation path)."""
    prepared = workloads("gzip")
    event = run_one(
        ClusteredSimulator, prepared, _machine(clusters), policy, live_trainer=False
    )
    batched = run_batched_matched(
        prepared, _machine(clusters), policy, live_trainer=False
    )
    assert_bit_identical(
        batched, event, f"gzip {policy} {clusters}cl frozen batched"
    )


def test_batched_custom_stack_bit_identical(workloads):
    """A non-preset stack (dependence steering + LoC scheduling + chunked
    predictor) must lower to the fast path and stay bit-identical."""
    spec = PolicySpec(
        steering=SteeringSpec("dependence"),
        scheduler=SchedulerSpec("loc"),
        predictor=PredictorSpec("chunked"),
    )
    prepared = workloads("vpr")
    event = run_one(ClusteredSimulator, prepared, _machine(4), spec)
    batched = run_batched_matched(prepared, _machine(4), spec)
    assert_bit_identical(batched, event, "vpr dependence+loc 4cl batched")


def test_fast_policy_rejects_unbatchable_stacks():
    """Readiness steering has no fast-path lowering; the promotion logic
    must leave such jobs on the event backend."""
    assert fast_policy("readiness") is None


def test_serialize_round_trip_preserves_identity(workloads):
    prepared = workloads("vpr")
    event, reference = run_both(prepared, _machine(4), "s")
    revived = result_from_dict(result_to_dict(event))
    assert results_identical(revived, event)
    assert results_identical(revived, reference)


def test_telemetry_does_not_perturb_identity(workloads):
    """A telemetry-observed event run stays bit-identical to the reference.

    The recorder only reads live state (occupancy, heap snapshots), so the
    event simulator with a telemetry hook attached must produce exactly
    the timing the plain reference loop does.
    """
    from repro.telemetry import Recorder

    prepared = workloads("gcc")
    max_cycles = 64 * len(prepared.trace) + 10_000
    steering, scheduler, __ = _policy_pair("dependence")
    recorder = Recorder(interval=64)
    recorder.note_policies(steering, scheduler)
    sim = ClusteredSimulator(
        config=_machine(4),
        steering=steering,
        scheduler=scheduler,
        collect_ilp=True,
        max_cycles=max_cycles,
        telemetry=recorder,
    )
    event = sim.run(prepared.trace, prepared.dependences, prepared.mispredicted)
    event.telemetry = recorder.finalize(event)
    assert event.telemetry is not None and event.telemetry.samples

    steering, scheduler, __ = _policy_pair("dependence")
    reference = ReferenceSimulator(
        config=_machine(4),
        steering=steering,
        scheduler=scheduler,
        collect_ilp=True,
        max_cycles=max_cycles,
    ).run(prepared.trace, prepared.dependences, prepared.mispredicted)
    assert_bit_identical(event, reference, "gcc dependence 4cl telemetry")


# ---------------------------------------------------------------------------
# Hypothesis-driven exploration
# ---------------------------------------------------------------------------


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    kernel=st.sampled_from(("gcc", "vpr", "gzip", "twolf", "perl")),
    seed=st.integers(min_value=0, max_value=2**16),
    instructions=st.integers(min_value=50, max_value=900),
    policy=st.sampled_from(POLICY_NAMES + ("readiness",)),
    clusters=st.sampled_from(CLUSTER_COUNTS),
    forwarding_latency=st.integers(min_value=1, max_value=6),
    window=st.sampled_from((4, 8, 32)),
)
def test_hypothesis_traces_bit_identical(
    kernel, seed, instructions, policy, clusters, forwarding_latency, window
):
    prepared = prepare_workload(kernel, instructions, seed)
    if clusters == 1:
        config = monolithic_machine()
    else:
        base = clustered_machine(clusters, forwarding_latency=forwarding_latency)
        config = dataclasses.replace(
            base, cluster=dataclasses.replace(base.cluster, window_size=window)
        )
    event, reference = run_both(prepared, config, policy)
    context = (
        f"{kernel} seed={seed} n={instructions} {policy} {clusters}cl "
        f"fwd={forwarding_latency} win={window}"
    )
    assert_bit_identical(event, reference, context)
    if fast_policy(policy) is not None:
        batched = run_batched_matched(prepared, config, policy)
        assert_bit_identical(batched, event, f"{context} batched")


# ---------------------------------------------------------------------------
# Heterogeneous machines: asymmetric geometry through every backend
# ---------------------------------------------------------------------------

# One kernel per machine, chosen to exercise its quirk: the FP-less thin
# clusters see eon's FP traffic (capability redirects), the slow-divider
# cluster sees gap's integer multiplies (per-cluster latency plane), and
# the fat+thin machine gets plain gcc (pure geometry asymmetry).
HETERO_CASES = (
    ("fat_thin", fat_thin_machine, "gcc"),
    ("fp_less_thin", fp_less_thin_machine, "eon"),
    ("slow_divider", slow_divider_machine, "gap"),
)

HETERO_POLICIES = ("dependence", "focused", "l", "s", "p", "affinity")


@pytest.mark.parametrize("policy", HETERO_POLICIES)
@pytest.mark.parametrize(
    "name,builder,kernel", HETERO_CASES, ids=[c[0] for c in HETERO_CASES]
)
def test_hetero_event_vs_reference_bit_identical(
    workloads, name, builder, kernel, policy
):
    config = builder()
    prepared = workloads(kernel)
    event, reference = run_both(prepared, config, policy)
    assert_bit_identical(event, reference, f"{kernel} {policy} {name}")
    if batchable_config(config) and fast_policy(policy) is not None:
        batched = run_batched_matched(prepared, config, policy)
        assert_bit_identical(batched, event, f"{kernel} {policy} {name} batched")


def test_hetero_latency_overrides_actually_bite(workloads):
    """The slow-divider machine must not silently equal the uniform one."""
    prepared = workloads("gap")
    slow = run_one(
        ClusteredSimulator, prepared, slow_divider_machine(), "dependence"
    )
    uniform = run_one(
        ClusteredSimulator, prepared, clustered_machine(2), "dependence"
    )
    assert not results_identical(slow, uniform)


def test_fp_less_machine_confines_fp_ops(workloads):
    """Every FP op lands on a cluster that has FP ports."""
    from repro.vm.isa import OpClass

    config = fp_less_thin_machine()
    prepared = workloads("eon")
    result = run_one(ClusteredSimulator, prepared, config, "dependence")
    fp_records = [
        record
        for record in result.records
        if record.instr.opclass is OpClass.FP
    ]
    assert fp_records, "eon must carry FP traffic for this test to bite"
    for record in fp_records:
        assert config.clusters[record.cluster].fp_ports > 0


def test_batched_rejects_zero_port_clusters(workloads):
    prepared = workloads("gcc", 200)
    pre = TracePrecompute.from_prepared(prepared)
    fast = fast_policy("dependence")
    with pytest.raises(ValueError, match="FP and memory ports"):
        simulate_batched(pre, fp_less_thin_machine(), fast)


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    clusters=st.sampled_from((2, 4, 8)),
    policy=st.sampled_from(("dependence", "s")),
    kernel=st.sampled_from(("gcc", "twolf")),
    instructions=st.integers(min_value=100, max_value=500),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_uniform_percluster_spelling_is_the_legacy_machine(
    clusters, policy, kernel, instructions, seed
):
    """Spelling N equal clusters explicitly is *the same machine*: equal
    config, identical spec hash, and bit-identical results on all three
    backends."""
    legacy = clustered_machine(clusters)
    spelled = MachineConfig(
        clusters=tuple(legacy.clusters),
        rob_size=legacy.rob_size,
        dispatch_width=legacy.dispatch_width,
        commit_width=legacy.commit_width,
        forwarding_latency=legacy.forwarding_latency,
        forwarding_bandwidth=legacy.forwarding_bandwidth,
    )
    assert spelled == legacy
    assert spec_hash(MachineSpec(clusters=tuple(legacy.clusters))) == spec_hash(
        MachineSpec(clusters=clusters)
    )

    prepared = prepare_workload(kernel, instructions, seed)
    context = f"{kernel} n={instructions} seed={seed} {policy} {clusters}cl"
    event_legacy, reference_legacy = run_both(prepared, legacy, policy)
    event_spelled, reference_spelled = run_both(prepared, spelled, policy)
    assert_bit_identical(event_spelled, event_legacy, f"{context} event")
    assert_bit_identical(reference_spelled, reference_legacy, f"{context} ref")
    if fast_policy(policy) is not None:
        batched_legacy = run_batched_matched(prepared, legacy, policy)
        batched_spelled = run_batched_matched(prepared, spelled, policy)
        assert_bit_identical(batched_spelled, batched_legacy, f"{context} batched")
        assert_bit_identical(batched_spelled, event_spelled, f"{context} b-vs-e")
