"""Tests for the analysis layer: breakdowns, events, ILP, consumer stats."""

import pytest

from repro.analysis.breakdown import FIGURE5_SEGMENTS, cpi_breakdown
from repro.analysis.consumers import consumer_criticality_stats, exact_loc_by_pc
from repro.analysis.events import classify_lost_cycle_events
from repro.analysis.ilp import merge_profiles
from repro.core.config import clustered_machine, monolithic_machine
from repro.core.rename import extract_dependences
from repro.core.results import IlpProfile
from repro.core.simulator import ClusteredSimulator
from repro.frontend.branch_predictor import (
    GshareBranchPredictor,
    annotate_mispredictions,
)
from repro.workloads.suite import get_kernel


def run_kernel(name, config, n=3000, collect_ilp=False):
    spec = get_kernel(name)
    trace = spec.generate(n)
    deps = extract_dependences(trace)
    mis = frozenset(annotate_mispredictions(trace, GshareBranchPredictor()))
    sim = ClusteredSimulator(config, collect_ilp=collect_ilp, max_cycles=2_000_000)
    return sim.run(trace, deps, mis)


class TestCpiBreakdown:
    def test_segments_sum_to_cpi(self):
        result = run_kernel("twolf", clustered_machine(4))
        breakdown = cpi_breakdown(result)
        assert sum(breakdown.segments.values()) == pytest.approx(result.cpi)

    def test_normalization(self):
        result = run_kernel("gcc", monolithic_machine())
        breakdown = cpi_breakdown(result)
        normalized = breakdown.normalized(result.cpi)
        assert sum(normalized.values()) == pytest.approx(1.0)

    def test_all_figure5_segments_present(self):
        result = run_kernel("vpr", clustered_machine(2))
        breakdown = cpi_breakdown(result)
        assert set(breakdown.segments) == set(FIGURE5_SEGMENTS)

    def test_monolithic_has_no_forwarding(self):
        result = run_kernel("vpr", monolithic_machine())
        breakdown = cpi_breakdown(result)
        assert breakdown.segments["fwd_delay"] == 0.0

    def test_bad_baseline_rejected(self):
        result = run_kernel("gcc", monolithic_machine(), n=1000)
        with pytest.raises(ValueError):
            cpi_breakdown(result).normalized(0.0)


class TestEventClassification:
    def test_monolithic_has_no_forwarding_events(self):
        result = run_kernel("vpr", monolithic_machine())
        __, forwarding = classify_lost_cycle_events(result.records)
        assert forwarding.total == 0

    def test_clustered_run_produces_events(self):
        result = run_kernel("vpr", clustered_machine(8), n=4000)
        contention, forwarding = classify_lost_cycle_events(result.records)
        assert contention.total + forwarding.total > 0

    def test_totals_add_up(self):
        result = run_kernel("crafty", clustered_machine(4))
        contention, forwarding = classify_lost_cycle_events(result.records)
        assert contention.total == contention.predicted_critical + contention.other
        assert forwarding.total == (
            forwarding.load_balance + forwarding.dyadic + forwarding.other
        )


class TestIlpProfile:
    def test_record_and_achieved(self):
        profile = IlpProfile()
        profile.record(4, 2)
        profile.record(4, 4)
        assert profile.achieved(4) == pytest.approx(3.0)
        assert profile.achieved(9) == 0.0

    def test_series_sorted_and_capped(self):
        profile = IlpProfile()
        for available in (5, 1, 30):
            profile.record(available, 1)
        series = profile.series(max_available=10)
        assert [a for a, __ in series] == [1, 5]

    def test_merge(self):
        a, b = IlpProfile(), IlpProfile()
        a.record(2, 2)
        b.record(2, 0)
        merged = merge_profiles([a, b])
        assert merged.achieved(2) == pytest.approx(1.0)

    def test_simulator_collects_profile(self):
        result = run_kernel("gcc", clustered_machine(8), n=2000, collect_ilp=True)
        assert result.ilp_profile is not None
        assert sum(result.ilp_profile.cycle_count.values()) > 0

    def test_achieved_never_exceeds_available(self):
        result = run_kernel("vortex", clustered_machine(8), n=2000, collect_ilp=True)
        for available, achieved in result.ilp_profile.series():
            if available > 0:
                assert achieved <= available + 1e-9


class TestConsumerStats:
    def test_fractions_in_range(self):
        result = run_kernel("vpr", monolithic_machine(), n=4000)
        stats = consumer_criticality_stats(result.records)
        for value in (
            stats.statically_unique_fraction,
            stats.bimodal_fraction,
            stats.most_critical_not_first_fraction,
        ):
            assert 0.0 <= value <= 1.0
        assert stats.values_analyzed > 0

    def test_exact_loc_by_pc_in_unit_interval(self):
        result = run_kernel("parser", monolithic_machine(), n=3000)
        loc = exact_loc_by_pc(result.records)
        assert loc
        assert all(0.0 <= v <= 1.0 for v in loc.values())

    def test_loop_kernel_has_unique_most_critical_consumers(self):
        # Tight loops reuse the same static consumers every iteration, so
        # static uniqueness should be high.
        result = run_kernel("gzip", monolithic_machine(), n=4000)
        stats = consumer_criticality_stats(result.records)
        assert stats.statically_unique_fraction > 0.5


class TestNearCriticalProfile:
    def test_fractions_ordered_and_bounded(self):
        from repro.analysis.near_critical import near_critical_profile

        result = run_kernel("vpr", monolithic_machine(), n=3000)
        profile = near_critical_profile(result.records, result.config)
        assert 0.0 <= profile.zero_slack_fraction <= profile.near_critical_fraction
        assert profile.near_critical_fraction <= 1.0
        assert 0.0 <= profile.walk_coverage_of_zero_slack <= 1.0

    def test_serial_chain_is_all_critical(self):
        from repro.analysis.near_critical import near_critical_profile
        from repro.workloads.patterns import serial_chain
        from repro.core.simulator import ClusteredSimulator

        sim = ClusteredSimulator(monolithic_machine(), max_cycles=50_000)
        result = sim.run(serial_chain(200), mispredicted=frozenset())
        profile = near_critical_profile(result.records, result.config)
        assert profile.zero_slack_fraction > 0.9

    def test_parallel_paths_reduce_walk_coverage(self):
        # Equal-length parallel chains finish together: many zero-slack
        # instructions, only one chain walked -- the paper's caveat.
        from repro.analysis.near_critical import near_critical_profile
        from repro.workloads.patterns import parallel_chains
        from repro.core.simulator import ClusteredSimulator

        sim = ClusteredSimulator(monolithic_machine(), max_cycles=50_000)
        result = sim.run(parallel_chains(4, 100), mispredicted=frozenset())
        profile = near_critical_profile(result.records, result.config)
        if profile.zero_slack_fraction > 0.5:
            assert profile.walk_coverage_of_zero_slack < 0.9

    def test_threshold_validated(self):
        from repro.analysis.near_critical import near_critical_profile

        result = run_kernel("gcc", monolithic_machine(), n=1000)
        import pytest as _pytest

        with _pytest.raises(ValueError):
            near_critical_profile(result.records, result.config, threshold=-1)
