"""Tests for trace serialization."""

import pytest

from repro.vm.traceio import (
    load_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)
from repro.workloads.patterns import serial_chain
from repro.workloads.suite import get_kernel


class TestRoundTrip:
    def test_pattern_round_trip(self, tmp_path):
        trace = serial_chain(50)
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded == trace

    def test_kernel_round_trip_preserves_everything(self, tmp_path):
        trace = get_kernel("vpr").generate(800)
        path = tmp_path / "vpr.json"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded == trace

    def test_round_tripped_trace_simulates_identically(self, tmp_path):
        from repro.core.config import clustered_machine
        from repro.core.simulator import ClusteredSimulator

        trace = get_kernel("gcc").generate(800)
        path = tmp_path / "gcc.json"
        save_trace(trace, path)
        loaded = load_trace(path)
        a = ClusteredSimulator(clustered_machine(4), max_cycles=100_000).run(trace)
        b = ClusteredSimulator(clustered_machine(4), max_cycles=100_000).run(loaded)
        assert a.cycles == b.cycles


class TestFormatGuards:
    def test_bad_version_rejected(self):
        data = trace_to_dict(serial_chain(3))
        data["version"] = 99
        with pytest.raises(ValueError):
            trace_from_dict(data)

    def test_mismatched_columns_rejected(self):
        data = trace_to_dict(serial_chain(3))
        data["pc"] = data["pc"][:-1]
        with pytest.raises(ValueError):
            trace_from_dict(data)
