"""Property-based tests (hypothesis) on core invariants.

Random programs and dataflow shapes are generated and pushed through the
full stack; the invariants checked here are the ones every figure rests on:
timing-model consistency, full cycle attribution, dependence correctness
and counter convergence.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.core.config import clustered_machine, monolithic_machine
from repro.core.rename import build_consumer_lists, extract_dependences
from repro.core.serialize import result_from_dict, result_to_dict
from repro.core.simulator import ClusteredSimulator
from repro.criticality.critical_path import analyze_critical_path
from repro.criticality.graph import validate_timing
from repro.criticality.slack import compute_global_slack
from repro.experiments.cache import job_key
from repro.experiments.parallel import RunJob
from repro.util.counters import SaturatingCounter, StratifiedFrequencyCounter
from repro.vm.isa import OpClass
from repro.vm.trace import DynamicInstruction

# ---------------------------------------------------------------------------
# Random dataflow-trace strategy: each instruction reads 0-2 of the previous
# 8 registers and writes one register; ~20% are loads with random addresses.
# ---------------------------------------------------------------------------


@st.composite
def random_traces(draw, max_len=120):
    length = draw(st.integers(min_value=1, max_value=max_len))
    trace = []
    for i in range(length):
        kind = draw(st.integers(min_value=0, max_value=9))
        reg = draw(st.integers(min_value=1, max_value=8))
        nsrcs = draw(st.integers(min_value=0, max_value=2))
        srcs = tuple(
            draw(st.integers(min_value=1, max_value=8)) for __ in range(nsrcs)
        )
        if kind < 2:
            opclass, opcode, dest, addr = OpClass.LOAD, "ld", reg, draw(
                st.integers(min_value=0, max_value=63)
            ) * 64
        elif kind < 3:
            opclass, opcode, dest, addr = OpClass.STORE, "st", None, draw(
                st.integers(min_value=0, max_value=63)
            ) * 64
        elif kind < 4:
            opclass, opcode, dest, addr = OpClass.INT_MUL, "mul", reg, None
        else:
            opclass, opcode, dest, addr = OpClass.INT_ALU, "add", reg, None
        trace.append(
            DynamicInstruction(
                index=i,
                pc=draw(st.integers(min_value=0, max_value=30)),
                opcode=opcode,
                opclass=opclass,
                dest=dest,
                srcs=srcs,
                next_pc=i + 1,
                mem_addr=addr,
            )
        )
    return trace


CONFIGS = [monolithic_machine(), clustered_machine(2), clustered_machine(8)]


@given(trace=random_traces(), config_index=st.integers(min_value=0, max_value=2))
@settings(max_examples=40, deadline=None)
def test_timing_satisfies_every_model_edge(trace, config_index):
    config = CONFIGS[config_index]
    result = ClusteredSimulator(config, max_cycles=100_000).run(
        trace, mispredicted=frozenset()
    )
    assert validate_timing(result.records, config) == []


@given(trace=random_traces(), config_index=st.integers(min_value=0, max_value=2))
@settings(max_examples=40, deadline=None)
def test_critical_path_attributes_every_cycle(trace, config_index):
    config = CONFIGS[config_index]
    result = ClusteredSimulator(config, max_cycles=100_000).run(
        trace, mispredicted=frozenset()
    )
    analysis = analyze_critical_path(result.records)
    assert analysis.attributed_cycles == analysis.total_cycles
    assert all(v >= 0 for v in analysis.breakdown.values())


@given(trace=random_traces())
@settings(max_examples=40, deadline=None)
def test_slack_non_negative(trace):
    config = clustered_machine(4)
    result = ClusteredSimulator(config, max_cycles=100_000).run(
        trace, mispredicted=frozenset()
    )
    slacks = compute_global_slack(result.records, config)
    assert all(s >= 0 for s in slacks)


@given(trace=random_traces())
@settings(max_examples=40, deadline=None)
def test_event_times_are_ordered(trace):
    result = ClusteredSimulator(monolithic_machine(), max_cycles=100_000).run(
        trace, mispredicted=frozenset()
    )
    for rec in result.records:
        assert rec.dispatch_time < rec.ready_time <= rec.issue_time
        assert rec.issue_time < rec.complete_time < rec.commit_time


@given(trace=random_traces())
@settings(max_examples=40, deadline=None)
def test_dependences_point_backward_and_invert_cleanly(trace):
    deps = extract_dependences(trace)
    for i, d in enumerate(deps):
        assert all(p < i for p in d.all_deps)
    consumers = build_consumer_lists(deps)
    for producer, consumer_list in enumerate(consumers):
        for consumer in consumer_list:
            assert producer in deps[consumer].all_deps


@given(
    outcomes=st.lists(st.booleans(), min_size=1, max_size=300),
    increment=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_saturating_counter_stays_in_range(outcomes, increment):
    counter = SaturatingCounter(bits=6, increment=increment)
    for outcome in outcomes:
        counter.train(outcome)
        assert 0 <= counter.value <= counter.max_value


@given(outcomes=st.lists(st.booleans(), min_size=1, max_size=300))
@settings(max_examples=60, deadline=None)
def test_stratified_counter_within_one_step_of_exact(outcomes):
    counter = StratifiedFrequencyCounter(levels=16)
    for outcome in outcomes:
        counter.train(outcome)
    exact = sum(outcomes) / len(outcomes)
    assert abs(counter.fraction - exact) <= 0.5 / 15


# ---------------------------------------------------------------------------
# Run-cache keys: injective over every field that determines a run's output.
# ---------------------------------------------------------------------------


@st.composite
def run_jobs(draw):
    num_clusters = draw(st.sampled_from([1, 2, 4, 8]))
    fwd = draw(st.integers(min_value=0, max_value=4))
    return RunJob(
        kernel=draw(st.sampled_from(["gcc", "vpr", "mcf", "bzip2"])),
        instructions=draw(st.integers(min_value=100, max_value=20_000)),
        seed=draw(st.integers(min_value=0, max_value=7)),
        loc_mode=draw(st.sampled_from(["probabilistic", "stratified", "exact"])),
        config=clustered_machine(num_clusters, forwarding_latency=fwd),
        policy=draw(st.sampled_from(["dependence", "focused", "l", "s", "p"])),
        collect_ilp=draw(st.booleans()),
        warm=draw(st.booleans()),
    )


@given(a=run_jobs(), b=run_jobs())
@settings(max_examples=200, deadline=None)
def test_cache_keys_injective_over_distinct_jobs(a, b):
    # Distinct (kernel, instructions, seed, loc_mode, config, policy,
    # collect_ilp, warm) tuples must never collide on disk.
    assume(a != b)
    assert job_key(a) != job_key(b)


@given(job=run_jobs())
@settings(max_examples=100, deadline=None)
def test_cache_key_is_stable_and_well_formed(job):
    key = job_key(job)
    assert key == job_key(job)
    assert len(key) == 64 and all(c in "0123456789abcdef" for c in key)


# ---------------------------------------------------------------------------
# Result serialization: exact round-trip, nested counters included.
# ---------------------------------------------------------------------------


@given(trace=random_traces(), config_index=st.integers(min_value=0, max_value=2))
@settings(max_examples=25, deadline=None)
def test_result_serialization_round_trips_exactly(trace, config_index):
    import json

    config = CONFIGS[config_index]
    result = ClusteredSimulator(config, collect_ilp=True, max_cycles=100_000).run(
        trace, mispredicted=frozenset()
    )
    payload = result_to_dict(result)
    # Survives an actual JSON encode/decode, not just dict copying.
    revived = result_from_dict(json.loads(json.dumps(payload)))
    assert result_to_dict(revived) == payload
    assert revived.cpi == result.cpi
    assert revived.cycles == result.cycles
    assert revived.config == result.config
    assert revived.ilp_profile.issued_sum == result.ilp_profile.issued_sum
    assert revived.ilp_profile.cycle_count == result.ilp_profile.cycle_count
    # Consumer back-references are re-linked to the revived records.
    for original, loaded in zip(result.records, revived.records):
        assert [w.index for w in original.waiters] == [
            w.index for w in loaded.waiters
        ]
        assert original.forwarded_to_clusters == loaded.forwarded_to_clusters


@given(trace=random_traces(), fwd=st.integers(min_value=0, max_value=4))
@settings(max_examples=30, deadline=None)
def test_monolithic_is_never_far_slower_than_clustered(trace, fwd):
    # Partitioning removes scheduling freedom, but oldest-first is a greedy
    # heuristic, so the monolithic machine is NOT a strict lower bound:
    # splitting the window can accidentally yield a better global schedule
    # (a Graham list-scheduling anomaly; hypothesis found a 55-vs-49-cycle
    # example).  What does hold is a Graham-style factor bound: greedy on
    # the monolithic machine stays within ~2x of any feasible schedule,
    # and every clustered schedule is feasible for the monolithic machine.
    mono = ClusteredSimulator(monolithic_machine(), max_cycles=100_000).run(
        trace, mispredicted=frozenset()
    )
    split = ClusteredSimulator(
        clustered_machine(4, forwarding_latency=fwd), max_cycles=100_000
    ).run(trace, mispredicted=frozenset())
    assert mono.cycles <= 2 * split.cycles + 10
