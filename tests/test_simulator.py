"""Core timing-simulator behaviour on hand-built dataflow patterns."""

import pytest

from repro.core.config import clustered_machine, monolithic_machine
from repro.core.instruction import DispatchReason
from repro.core.simulator import ClusteredSimulator, SimulationDeadlock
from repro.core.steering.simple import LoadBalanceSteering, ModuloSteering
from repro.frontend.fetch import FrontEndConfig
from repro.workloads.patterns import (
    convergent_pairs,
    load_chain,
    parallel_chains,
    serial_chain,
)

import dataclasses


def run_sim(trace, config, steering=None, **kwargs):
    sim = ClusteredSimulator(config, steering=steering, max_cycles=200_000, **kwargs)
    return sim.run(trace, mispredicted=frozenset())


class TestMonolithicTiming:
    def test_serial_chain_executes_one_per_cycle(self):
        n = 200
        result = run_sim(serial_chain(n), monolithic_machine())
        # Depth-13 fill + one add per cycle + commit tail.
        assert n + 13 <= result.cycles <= n + 20

    def test_parallel_chains_fill_width(self):
        n = 100
        result = run_sim(parallel_chains(8, n), monolithic_machine())
        # Eight independent chains: all 8 lanes busy, ~n cycles of execute.
        assert result.cycles <= n + 25

    def test_width_bounds_ipc(self):
        result = run_sim(parallel_chains(16, 50), monolithic_machine())
        assert result.ipc <= 8.0 + 1e-9

    def test_issue_never_precedes_readiness(self):
        result = run_sim(parallel_chains(4, 50), monolithic_machine())
        for rec in result.records:
            assert rec.issue_time >= rec.ready_time
            assert rec.ready_time >= rec.dispatch_time + 1

    def test_commit_in_order(self):
        result = run_sim(parallel_chains(4, 50), monolithic_machine())
        times = [rec.commit_time for rec in result.records]
        assert times == sorted(times)

    def test_complete_respects_latency(self):
        result = run_sim(serial_chain(20), monolithic_machine())
        for rec in result.records:
            assert rec.complete_time == rec.issue_time + rec.latency


class TestClusteredTiming:
    def test_forwarding_latency_slows_split_chain(self):
        # Modulo steering forces every hop of a serial chain across
        # clusters: each add costs 1 (exec) + 2 (forward) cycles.
        n = 100
        config = clustered_machine(2, forwarding_latency=2)
        split = run_sim(serial_chain(n), config, steering=ModuloSteering())
        local = run_sim(serial_chain(n), config)  # dependence steering
        assert split.cycles > local.cycles + n  # ~2 extra cycles per hop

    def test_forwarding_latency_zero_matches_monolithic_chain(self):
        n = 100
        config = clustered_machine(2, forwarding_latency=0)
        split = run_sim(serial_chain(n), config, steering=ModuloSteering())
        mono = run_sim(serial_chain(n), monolithic_machine())
        assert abs(split.cycles - mono.cycles) <= 2

    def test_global_values_counted_for_cross_cluster_consumers(self):
        n = 50
        config = clustered_machine(2, forwarding_latency=2)
        result = run_sim(serial_chain(n), config, steering=ModuloSteering())
        # Every link of the chain crosses clusters.
        assert result.global_values >= n - 2

    def test_dependence_steering_keeps_chain_local(self):
        result = run_sim(serial_chain(100), clustered_machine(4))
        assert result.global_values_per_instruction < 0.2

    def test_mem_port_limit_per_cluster(self):
        # 4x2w has one memory port per cluster: issue times of loads on one
        # cluster must be distinct cycles.
        trace = load_chain(40)
        result = run_sim(trace, clustered_machine(4))
        by_cluster_cycle = {}
        for rec in result.records:
            key = (rec.cluster, rec.issue_time)
            by_cluster_cycle[key] = by_cluster_cycle.get(key, 0) + 1
        assert all(v <= 1 for v in by_cluster_cycle.values())

    def test_one_wide_cluster_issues_one_per_cycle(self):
        result = run_sim(parallel_chains(8, 30), clustered_machine(8))
        per_cluster_cycle = {}
        for rec in result.records:
            key = (rec.cluster, rec.issue_time)
            per_cluster_cycle[key] = per_cluster_cycle.get(key, 0) + 1
        assert all(v <= 1 for v in per_cluster_cycle.values())


class TestDispatchProvenance:
    def test_first_instruction_is_start(self):
        result = run_sim(serial_chain(10), monolithic_machine())
        assert result.records[0].dispatch_reason is DispatchReason.START

    def test_bandwidth_reason_chains_to_predecessor(self):
        result = run_sim(parallel_chains(2, 20), monolithic_machine())
        rec = result.records[10]
        if rec.dispatch_reason is DispatchReason.FETCH_BANDWIDTH:
            assert rec.dispatch_pred == rec.index - 1

    def test_window_fill_stalls_dispatch(self):
        # A long serial chain fills the aggregate window; dispatch must
        # eventually stall with CLUSTER_FULL or ROB_FULL provenance.
        result = run_sim(serial_chain(400), monolithic_machine())
        reasons = {rec.dispatch_reason for rec in result.records}
        assert DispatchReason.CLUSTER_FULL in reasons or (
            DispatchReason.ROB_FULL in reasons
        )


class TestContentionAccounting:
    def test_no_contention_when_width_suffices(self):
        result = run_sim(parallel_chains(4, 40), monolithic_machine())
        assert result.total_contention_cycles == 0

    def test_contention_when_oversubscribed(self):
        result = run_sim(parallel_chains(4, 40), clustered_machine(8))
        # Dependence steering may pile chains onto few 1-wide clusters --
        # but even perfectly spread, intra-cluster conflicts can occur.
        assert result.total_contention_cycles >= 0  # sanity: non-negative

    def test_convergent_pairs_execute(self):
        result = run_sim(convergent_pairs(30), clustered_machine(2))
        assert result.instructions == 90


class TestGuards:
    def test_empty_trace_rejected(self):
        sim = ClusteredSimulator(monolithic_machine())
        with pytest.raises(ValueError):
            sim.run([])

    def test_deadlock_guard_raises(self):
        sim = ClusteredSimulator(monolithic_machine(), max_cycles=5)
        with pytest.raises(SimulationDeadlock):
            sim.run(serial_chain(1000), mispredicted=frozenset())

    def test_load_balance_steering_spreads(self):
        result = run_sim(
            parallel_chains(8, 30),
            clustered_machine(8),
            steering=LoadBalanceSteering(),
        )
        clusters = {rec.cluster for rec in result.records}
        assert len(clusters) == 8


class TestFrontEndIntegration:
    def test_shallower_pipeline_finishes_sooner(self):
        shallow = dataclasses.replace(
            monolithic_machine(), frontend=FrontEndConfig(depth_to_dispatch=1)
        )
        deep = monolithic_machine()
        t1 = run_sim(serial_chain(50), shallow).cycles
        t2 = run_sim(serial_chain(50), deep).cycles
        assert t2 - t1 == 12


class TestLimitedBandwidth:
    def make_config(self, bandwidth):
        return dataclasses.replace(
            clustered_machine(2, forwarding_latency=2),
            forwarding_bandwidth=bandwidth,
        )

    def test_infinite_matches_default(self):
        trace = serial_chain(100)
        a = run_sim(trace, self.make_config(None), steering=ModuloSteering())
        b = run_sim(
            trace, clustered_machine(2, forwarding_latency=2),
            steering=ModuloSteering(),
        )
        assert a.cycles == b.cycles

    def test_narrow_bandwidth_never_faster(self):
        # An odd chain count means modulo steering on 2 clusters makes
        # every chain hop clusters at every step.
        trace = parallel_chains(7, 40)
        wide = run_sim(trace, self.make_config(None), steering=ModuloSteering())
        narrow = run_sim(trace, self.make_config(1), steering=ModuloSteering())
        assert narrow.cycles >= wide.cycles

    def test_bandwidth_one_serializes_transfers(self):
        # 7 chains all hopping clusters every step demand ~7 transfers per
        # 3 cycles; one transfer per cycle makes the interconnect the
        # bottleneck: cycles ~ total transfer count ~ instructions.
        trace = parallel_chains(7, 40)
        narrow = run_sim(trace, self.make_config(1), steering=ModuloSteering())
        assert narrow.global_values > len(trace) * 0.8
        assert narrow.cycles > len(trace) * 0.8

    def test_transfer_reused_by_same_cluster_consumers(self):
        # Two consumers on the same remote cluster share one transfer.
        config = self.make_config(None)
        result = run_sim(serial_chain(50), config, steering=ModuloSteering())
        for rec in result.records:
            assert len(rec.forwarded_to_clusters) <= config.num_clusters - 1
