"""Tests for the criticality predictors and the online trainer."""

import pytest

from repro.core.config import monolithic_machine
from repro.core.simulator import ClusteredSimulator
from repro.criticality.loc import LocPredictor, PredictorSuite
from repro.criticality.predictor import BinaryCriticalityPredictor
from repro.criticality.trainer import ChunkedCriticalityTrainer, NullTrainer
from repro.workloads.patterns import serial_chain


class TestBinaryPredictor:
    def test_unknown_pc_predicts_not_critical(self):
        assert not BinaryCriticalityPredictor().predict(1234)

    def test_trains_per_pc(self):
        predictor = BinaryCriticalityPredictor()
        predictor.train(10, True)
        assert predictor.predict(10)
        assert not predictor.predict(11)

    def test_one_in_eight_stays_critical(self):
        predictor = BinaryCriticalityPredictor()
        for __ in range(10):
            predictor.train(5, True)
            for __ in range(7):
                predictor.train(5, False)
        assert predictor.predict(5)

    def test_len_counts_pcs(self):
        predictor = BinaryCriticalityPredictor()
        predictor.train(1, True)
        predictor.train(2, False)
        assert len(predictor) == 2


class TestLocPredictor:
    def test_unknown_pc_is_zero(self):
        assert LocPredictor().value(99) == 0.0

    def test_exact_mode_tracks_frequency(self):
        predictor = LocPredictor(mode="exact")
        for i in range(100):
            predictor.train(7, i % 4 == 0)
        assert predictor.value(7) == pytest.approx(0.25)

    def test_stratified_mode_quantizes(self):
        predictor = LocPredictor(mode="stratified", levels=16)
        for i in range(100):
            predictor.train(7, i % 4 == 0)
        assert predictor.value(7) == pytest.approx(4 / 15)

    def test_probabilistic_mode_converges_roughly(self):
        predictor = LocPredictor(mode="probabilistic", seed=3)
        for i in range(4000):
            predictor.train(7, i % 4 == 0)
        assert 0.1 < predictor.value(7) < 0.45

    def test_probabilistic_is_deterministic_per_seed(self):
        a = LocPredictor(mode="probabilistic", seed=1)
        b = LocPredictor(mode="probabilistic", seed=1)
        for i in range(200):
            a.train(3, i % 3 == 0)
            b.train(3, i % 3 == 0)
        assert a.value(3) == b.value(3)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            LocPredictor(mode="psychic")


class TestPredictorSuite:
    def test_trains_both(self):
        suite = PredictorSuite()
        for __ in range(20):
            suite.train(42, True)
        assert suite.predict_critical(42)
        assert suite.loc(42) > 0.5


class TestChunkedTrainer:
    def test_trains_serial_chain_critical(self):
        suite = PredictorSuite(loc_predictor=LocPredictor(mode="exact"))
        trainer = ChunkedCriticalityTrainer(suite, chunk_size=128)
        sim = ClusteredSimulator(
            monolithic_machine(), trainer=trainer, max_cycles=100_000
        )
        sim.run(serial_chain(1000), mispredicted=frozenset())
        assert trainer.chunks_processed >= 7
        # Every chain PC is on the critical path nearly always.
        assert suite.loc(500) > 0.8

    def test_finish_flushes_partial_chunk(self):
        suite = PredictorSuite(loc_predictor=LocPredictor(mode="exact"))
        trainer = ChunkedCriticalityTrainer(suite, chunk_size=10_000)
        sim = ClusteredSimulator(
            monolithic_machine(), trainer=trainer, max_cycles=100_000
        )
        sim.run(serial_chain(500), mispredicted=frozenset())
        assert trainer.chunks_processed == 1  # flushed at finish()
        assert trainer.instances_trained == 500

    def test_rejects_tiny_chunks(self):
        with pytest.raises(ValueError):
            ChunkedCriticalityTrainer(PredictorSuite(), chunk_size=1)

    def test_null_trainer_is_inert(self):
        trainer = NullTrainer()
        trainer.on_commit(None)
        trainer.finish()
