"""The batched sweep backend's grouping, isolation and wiring contracts.

The production promise (see ``repro.experiments.batch``) is that a
``sim="batched"`` grid point's result is a pure function of its job --
independent of how a sweep is batched, ordered, or interleaved with other
grid points.  These tests attack that promise directly:

* hypothesis drives arbitrary permutations and partitions of a grid and
  demands every grouping produce results bit-identical to running each
  job alone (and identical cache keys, so the run cache can never
  observe the grouping either);
* shared-state isolation: repeating a group, reordering it, or running a
  member alone afterwards must not perturb anything -- the shared
  precompute, canonical warm suite and frozen-priority cache are
  read-only to measurement;
* the wiring seams: promotion in :meth:`Workbench.job` / spec-built
  plans, the ``batch="off"`` opt-out, rejection of unsupported jobs, and
  the grouping bypass under chaos injection.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import clustered_machine, monolithic_machine
from repro.core.serialize import results_identical
from repro.experiments.batch import (
    batch_key,
    execute_batched_job,
    fast_policy,
    grouping_blocked,
    plan_groups,
    run_batched_group,
    supports_job,
)
from repro.experiments.cache import job_key
from repro.experiments.harness import Workbench
from repro.experiments.parallel import RunJob, execute_job, prepare_workload
from repro.workloads.suite import get_kernel

INSTRUCTIONS = 500

# A small but representative grid: both steering families, three
# schedulers, predictor and predictor-less stacks, three cluster counts.
GRID = [
    (1, "l"),
    (2, "dependence"),
    (2, "focused"),
    (4, "l"),
    (4, "s"),
    (8, "p"),
]


def _machine(clusters: int):
    if clusters == 1:
        return monolithic_machine()
    return clustered_machine(clusters, forwarding_latency=2)


def _job(clusters: int, policy, *, warm: bool = True, sim: str = "batched") -> RunJob:
    return RunJob(
        kernel="gcc",
        instructions=INSTRUCTIONS,
        seed=0,
        loc_mode="probabilistic",
        config=_machine(clusters),
        policy=policy,
        warm=warm,
        sim=sim,
    )


@pytest.fixture(scope="module")
def prepared():
    return prepare_workload("gcc", INSTRUCTIONS, 0)


@pytest.fixture(scope="module")
def grid_jobs():
    return [_job(clusters, policy) for clusters, policy in GRID]


@pytest.fixture(scope="module")
def solo_results(grid_jobs, prepared):
    """Each grid job executed alone: the baseline every grouping must hit."""
    return [execute_batched_job(job, prepared) for job in grid_jobs]


# ---------------------------------------------------------------------------
# Grouping / ordering invariance
# ---------------------------------------------------------------------------


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_any_partition_and_order_is_bit_identical(
    data, grid_jobs, prepared, solo_results
):
    """Any permutation, split into any contiguous groups, matches solo runs.

    This is the property that makes the batched backend safe to wire into
    an arbitrary sweep: the scheduler (serial, pooled, resumed after a
    crash) may group and order eligible jobs however it likes.
    """
    order = data.draw(st.permutations(range(len(grid_jobs))), label="order")
    cuts = data.draw(
        st.sets(st.integers(min_value=1, max_value=len(grid_jobs) - 1)),
        label="cuts",
    )
    bounds = [0, *sorted(cuts), len(grid_jobs)]
    for lo, hi in zip(bounds, bounds[1:]):
        chunk = [grid_jobs[i] for i in order[lo:hi]]
        results = run_batched_group(chunk, prepared)
        for i, result in zip(order[lo:hi], results):
            assert results_identical(result, solo_results[i]), (
                f"job {grid_jobs[i].config.name}/{grid_jobs[i].policy} diverged "
                f"under grouping {bounds} order {order}"
            )


def test_job_keys_ignore_grouping(grid_jobs):
    """Cache keys are a pure function of the job -- grouping can't exist
    in the key domain, so a grouped run and a solo run share entries."""
    keys = [job_key(job) for job in grid_jobs]
    assert len(set(keys)) == len(keys)
    # Reconstructing the same jobs (fresh config objects, same values)
    # lands on the same keys.
    rebuilt = [_job(clusters, policy) for clusters, policy in GRID]
    assert [job_key(job) for job in rebuilt] == keys


def test_repeat_group_is_bit_identical(grid_jobs, prepared, solo_results):
    """A second run of the same group (fresh warm suite, fresh frozen
    cache) reproduces the first bit-for-bit: nothing accumulates."""
    first = run_batched_group(grid_jobs, prepared)
    second = run_batched_group(grid_jobs, prepared)
    for job, a, b, solo in zip(grid_jobs, first, second, solo_results):
        assert results_identical(a, b), f"{job.config.name}/{job.policy} drifted"
        assert results_identical(a, solo), f"{job.config.name}/{job.policy} != solo"


def test_member_alone_after_group_is_unperturbed(grid_jobs, prepared, solo_results):
    """Running the full group must not leak state into a later solo run."""
    run_batched_group(grid_jobs, prepared)
    for job, solo in zip(grid_jobs, solo_results):
        again = execute_batched_job(job, prepared)
        assert results_identical(again, solo)


def test_cold_jobs_match_event_backend(prepared):
    """``warm=False`` batched runs train live from cold and are
    bit-identical to the event backend's cold runs -- no methodology
    drift exists for cold measurements."""
    for clusters, policy in ((2, "focused"), (4, "l")):
        cold = _job(clusters, policy, warm=False)
        batched = execute_batched_job(cold, prepared)
        event = execute_job(dataclasses.replace(cold, sim="event"), prepared)
        assert results_identical(batched, event), f"{clusters}cl {policy} cold"


# ---------------------------------------------------------------------------
# Planning and rejection seams
# ---------------------------------------------------------------------------


def test_plan_groups_buckets_by_trace_and_falls_back():
    a = [_job(c, "l") for c in (1, 2, 4)]
    b = [
        dataclasses.replace(_job(2, "s"), kernel="mcf"),
        dataclasses.replace(_job(8, "focused"), kernel="mcf"),
    ]
    readiness = _job(2, "readiness")
    event = _job(2, "l", sim="event")
    groups, rest = plan_groups(a + b + [readiness, event])
    keys = {batch_key(group[0]) for group in groups}
    assert len(groups) == 2 and len(keys) == 2
    # Unsupported policy and unpromoted sim fall back to the per-job path.
    assert readiness in rest and event in rest
    total = sum(len(group) for group in groups)
    assert total == len(a + b)


def test_pooled_group_prefetch_honors_should_stop():
    # Graceful shutdown must interrupt the *pooled* batched path too,
    # not just the serial group loop: should_stop is polled while
    # awaiting group completions.
    from repro.experiments.outcomes import ExecutionInterrupted

    bench = Workbench(instructions=INSTRUCTIONS, workers=2)
    jobs = [
        bench.job(get_kernel(kernel), _machine(clusters), policy)
        for kernel in ("gcc", "gzip")
        for clusters, policy in ((1, "l"), (2, "l"))
    ]
    with pytest.raises(ExecutionInterrupted):
        bench.prefetch(jobs, should_stop=lambda: True)


def test_plan_groups_min_size_sends_singletons_to_rest():
    lone = _job(4, "p")
    groups, rest = plan_groups([lone])
    assert groups == [] and rest == [lone]


def test_execute_batched_job_rejects_unsupported(prepared):
    with pytest.raises(ValueError):
        execute_batched_job(_job(2, "readiness"), prepared)
    with pytest.raises(ValueError):
        execute_batched_job(
            dataclasses.replace(_job(2, "l"), metrics=True), prepared
        )


def test_run_batched_group_rejects_mixed_traces(prepared):
    other = dataclasses.replace(_job(2, "l"), kernel="mcf")
    with pytest.raises(ValueError):
        run_batched_group([_job(2, "l"), other], prepared)


def test_execute_job_rejects_unknown_sim(prepared):
    with pytest.raises(ValueError):
        execute_job(dataclasses.replace(_job(2, "l"), sim="warp"), prepared)


def test_supports_job_gates_metrics_and_policy():
    assert supports_job(_job(2, "l"))
    assert not supports_job(_job(2, "readiness"))
    assert not supports_job(dataclasses.replace(_job(2, "l"), metrics=True))
    assert fast_policy("readiness") is None


def test_grouping_blocked_under_chaos(monkeypatch):
    assert grouping_blocked() is None
    monkeypatch.setenv("REPRO_CHAOS", "0.5")
    assert grouping_blocked() is not None


# ---------------------------------------------------------------------------
# Workbench promotion wiring
# ---------------------------------------------------------------------------


def test_workbench_promotes_eligible_jobs():
    bench = Workbench(instructions=INSTRUCTIONS, benchmarks=[get_kernel("gcc")])
    spec = get_kernel("gcc")
    assert bench.job(spec, _machine(4), "l").sim == "batched"
    assert bench.job(spec, _machine(4), "readiness").sim == "event"
    assert bench.job(spec, _machine(1), "dependence").sim == "batched"


def test_workbench_batch_off_keeps_event():
    bench = Workbench(
        instructions=INSTRUCTIONS, benchmarks=[get_kernel("gcc")], batch="off"
    )
    assert bench.job(get_kernel("gcc"), _machine(4), "l").sim == "event"


def test_workbench_reference_sim_never_promoted():
    bench = Workbench(
        instructions=INSTRUCTIONS, benchmarks=[get_kernel("gcc")], sim="reference"
    )
    assert bench.job(get_kernel("gcc"), _machine(4), "l").sim == "reference"


def test_workbench_metrics_never_promoted():
    bench = Workbench(
        instructions=INSTRUCTIONS, benchmarks=[get_kernel("gcc")], metrics=True
    )
    assert bench.job(get_kernel("gcc"), _machine(4), "l").sim == "event"


def test_workbench_rejects_bad_batch_value():
    with pytest.raises(ValueError):
        Workbench(
            instructions=INSTRUCTIONS, benchmarks=[get_kernel("gcc")], batch="maybe"
        )


def test_promoted_key_differs_from_event_key():
    """Promotion changes the cache key: a batched result can never
    satisfy an event lookup (or vice versa)."""
    batched = _job(4, "l", sim="batched")
    event = _job(4, "l", sim="event")
    assert job_key(batched) != job_key(event)
