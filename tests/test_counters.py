"""Unit tests for the counter primitives behind the predictors."""

import pytest

from repro.util.counters import (
    ExactFrequencyCounter,
    ProbabilisticLevelCounter,
    SaturatingCounter,
    StratifiedFrequencyCounter,
)
from repro.util.rng import seeded_rng


class TestSaturatingCounter:
    def test_starts_not_predicting(self):
        assert not SaturatingCounter().predict()

    def test_fields_parameters_one_in_eight_classifies_critical(self):
        # The paper's footnote 6: +8 on critical, -1 otherwise, threshold 8;
        # 1-in-8 critical instances suffice to stay classified critical.
        counter = SaturatingCounter()
        for __ in range(20):
            counter.train(True)
            for __ in range(7):
                counter.train(False)
        assert counter.predict()

    def test_one_in_sixteen_does_not_classify_critical(self):
        counter = SaturatingCounter()
        for __ in range(20):
            counter.train(True)
            for __ in range(15):
                counter.train(False)
        assert not counter.predict()

    def test_saturates_at_max(self):
        counter = SaturatingCounter(bits=6)
        for __ in range(100):
            counter.train(True)
        assert counter.value == 63

    def test_saturates_at_zero(self):
        counter = SaturatingCounter()
        counter.train(False)
        counter.train(False)
        assert counter.value == 0

    def test_single_critical_predicts_immediately(self):
        counter = SaturatingCounter()
        counter.train(True)
        assert counter.predict()

    def test_rejects_nonpositive_bits(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)

    def test_rejects_out_of_range_initial_value(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=2, value=4)


class TestProbabilisticLevelCounter:
    def test_starts_at_zero_fraction(self):
        assert ProbabilisticLevelCounter().fraction == 0.0

    def test_all_true_training_saturates_high(self):
        counter = ProbabilisticLevelCounter(rng=seeded_rng("t1"))
        for __ in range(500):
            counter.train(True)
        assert counter.fraction == 1.0

    def test_all_false_training_stays_at_zero(self):
        counter = ProbabilisticLevelCounter(rng=seeded_rng("t2"))
        for __ in range(500):
            counter.train(False)
        assert counter.fraction == 0.0

    def test_tracks_underlying_frequency(self):
        # Steady-state expectation of the level equals the outcome rate.
        rng = seeded_rng("freq")
        counter = ProbabilisticLevelCounter(rng=seeded_rng("c"))
        samples = []
        for i in range(6000):
            counter.train(rng.random() < 0.30)
            if i > 1000:
                samples.append(counter.fraction)
        mean = sum(samples) / len(samples)
        assert 0.20 < mean < 0.40

    def test_sixteen_levels_fit_four_bits(self):
        counter = ProbabilisticLevelCounter(levels=16)
        assert counter.levels == 16  # 4 bits of storage (Section 7)

    def test_rejects_single_level(self):
        with pytest.raises(ValueError):
            ProbabilisticLevelCounter(levels=1)


class TestExactFrequencyCounter:
    def test_empty_is_zero(self):
        assert ExactFrequencyCounter().fraction == 0.0

    def test_exact_fraction(self):
        counter = ExactFrequencyCounter()
        for i in range(10):
            counter.train(i < 3)
        assert counter.fraction == pytest.approx(0.3)


class TestStratifiedFrequencyCounter:
    def test_quantizes_to_levels(self):
        counter = StratifiedFrequencyCounter(levels=16)
        for i in range(100):
            counter.train(i < 37)
        # 0.37 rounds to the nearest of 15 steps: 6/15 = 0.4.
        assert counter.fraction == pytest.approx(6 / 15)

    def test_matches_exact_at_extremes(self):
        counter = StratifiedFrequencyCounter()
        counter.train(True)
        assert counter.fraction == 1.0
