"""Validation tests for steering configuration objects and names."""

import pytest

from repro.core.steering.dependence import (
    CriticalitySteering,
    CriticalitySteeringConfig,
)


class TestCriticalitySteeringConfig:
    def test_defaults_are_focused(self):
        config = CriticalitySteeringConfig()
        assert config.preference == "binary"
        assert not config.stall_over_steer
        assert not config.proactive

    def test_invalid_preference(self):
        with pytest.raises(ValueError):
            CriticalitySteeringConfig(preference="psychic")

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            CriticalitySteeringConfig(stall_loc_threshold=1.5)
        with pytest.raises(ValueError):
            CriticalitySteeringConfig(stall_loc_threshold=-0.1)

    def test_paper_defaults(self):
        config = CriticalitySteeringConfig()
        # Section 5's 30% stall threshold; Section 7's proactive override.
        assert config.stall_loc_threshold == pytest.approx(0.30)
        assert config.keep_min_loc == pytest.approx(0.05)
        assert config.keep_fraction == pytest.approx(0.5)


class TestPolicyNames:
    def test_focused_name(self):
        assert CriticalitySteering().name == "focused"

    def test_stacked_names(self):
        policy = CriticalitySteering(
            CriticalitySteeringConfig(
                preference="loc", stall_over_steer=True, proactive=True
            )
        )
        assert policy.name == "loc+stall+proactive"

    def test_reset_clears_learning_state(self):
        policy = CriticalitySteering(
            CriticalitySteeringConfig(preference="loc", proactive=True)
        )
        policy._followed.add(42)
        policy._balance_candidates[7] = object()
        policy.reset()
        assert not policy._followed
        assert not policy._balance_candidates
