"""Unit tests for the VM interpreter's architectural semantics."""

import pytest

from repro.vm.assembler import assemble
from repro.vm.interpreter import ExecutionError, run



def trace_of(source, n=10_000, memory=None, regs=None):
    return run(assemble(source), n, initial_memory=memory, initial_regs=regs)


class TestArithmetic:
    def test_add_chain_and_halt(self):
        trace = trace_of("li r1, 5\naddi r1, r1, 3\nhalt")
        assert len(trace) == 3
        assert trace[-1].opcode == "halt"

    def test_loop_iterates_expected_count(self):
        trace = trace_of(
            """
            li r1, 0
            loop:
                addi r1, r1, 1
                cmplti r2, r1, 10
                bne r2, loop
            halt
            """
        )
        adds = [t for t in trace if t.opcode == "addi"]
        assert len(adds) == 10

    def test_zero_register_reads_zero_and_ignores_writes(self):
        trace = trace_of(
            """
            li   r31, 99
            add  r1, r31, r31
            cmpeqi r2, r1, 0
            bne  r2, ok
            halt
            ok:
            halt
            """
        )
        # The branch must be taken (r1 == 0), so we reach the second halt.
        assert trace[3].taken
        assert trace[-1].pc == 5

    def test_zero_register_not_a_dependence_source(self):
        trace = trace_of("add r1, r31, r31\nhalt")
        assert trace[0].srcs == ()

    def test_64bit_wraparound(self):
        trace = trace_of(
            """
            li r1, 1
            slli r1, r1, 63
            slli r1, r1, 1
            cmpeqi r2, r1, 0
            bne r2, ok
            halt
            ok:
            halt
            """
        )
        assert trace[-1].pc == 6

    def test_mul_and_compare(self):
        trace = trace_of(
            """
            li r1, 6
            muli r1, r1, 7
            cmpeqi r2, r1, 42
            bne r2, ok
            halt
            ok: halt
            """
        )
        assert trace[-1].pc == 5


class TestMemory:
    def test_load_returns_stored_value(self):
        trace = trace_of(
            """
            li r1, 123
            li r2, 10
            st r1, 0(r2)
            ld r3, 0(r2)
            cmpeq r4, r3, r1
            bne r4, ok
            halt
            ok: halt
            """
        )
        assert trace[-1].pc == 7

    def test_mem_addr_is_byte_address(self):
        trace = trace_of("li r2, 10\nld r3, 2(r2)\nhalt")
        load = trace[1]
        assert load.mem_addr == 12 * 8

    def test_uninitialized_memory_reads_zero(self):
        trace = trace_of(
            """
            li r2, 500
            ld r3, 0(r2)
            bne r3, bad
            halt
            bad: halt
            """
        )
        assert trace[-1].pc == 3

    def test_initial_memory_visible(self):
        trace = trace_of(
            """
            li r2, 7
            ld r3, 0(r2)
            cmpeqi r4, r3, 55
            bne r4, ok
            halt
            ok: halt
            """,
            memory={7: 55},
        )
        assert trace[-1].pc == 5

    def test_out_of_range_access_faults(self):
        with pytest.raises(ExecutionError):
            trace_of("li r2, 200000\nld r3, 0(r2)\nhalt")


class TestControlFlow:
    def test_taken_branch_records_target(self):
        trace = trace_of("li r1, 1\nbne r1, over\nhalt\nover: halt")
        branch = trace[1]
        assert branch.taken
        assert branch.next_pc == 3

    def test_not_taken_branch_falls_through(self):
        trace = trace_of("li r1, 0\nbne r1, over\nhalt\nover: halt")
        branch = trace[1]
        assert not branch.taken
        assert branch.next_pc == 2

    def test_beq_taken_on_zero(self):
        trace = trace_of("li r1, 0\nbeq r1, over\nhalt\nover: halt")
        assert trace[1].taken

    def test_unconditional_branch_always_taken(self):
        trace = trace_of("br over\nhalt\nover: halt")
        assert trace[0].taken

    def test_max_instructions_truncates(self):
        trace = trace_of("loop: addi r1, r1, 1\nbr loop", n=100)
        assert len(trace) == 100

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            trace_of("halt", n=0)


class TestFloatingPoint:
    def test_fp_roundtrip_through_memory(self):
        trace = trace_of(
            """
            li  r2, 3
            fld f1, 0(r2)
            fmul f2, f1, f1
            fst f2, 10(r2)
            ld  r4, 10(r2)
            halt
            """,
            memory={3: 1.5},
        )
        assert len(trace) == 6

    def test_cvtfi_truncates(self):
        trace = trace_of(
            """
            li  r2, 3
            fld f1, 0(r2)
            cvtfi r4, f1
            cmpeqi r5, r4, 2
            bne r5, ok
            halt
            ok: halt
            """,
            memory={3: 2.75},
        )
        assert trace[-1].pc == 6

    def test_initial_fp_registers(self):
        trace = trace_of(
            """
            cvtfi r4, f0
            cmpeqi r5, r4, 4
            bne r5, ok
            halt
            ok: halt
            """,
            regs={32: 4.5},
        )
        assert trace[-1].pc == 4


class TestTraceRecords:
    def test_indices_are_sequential(self):
        trace = trace_of("li r1, 3\nloop: subi r1, r1, 1\nbne r1, loop\nhalt")
        assert [t.index for t in trace] == list(range(len(trace)))

    def test_dest_none_for_stores_and_branches(self):
        trace = trace_of("li r1, 1\nli r2, 5\nst r1, 0(r2)\nhalt")
        assert trace[2].dest is None
        assert trace[3].dest is None
