"""Unit tests for the static ISA definition."""

import pytest

from repro.vm.isa import (
    BASE_LATENCY,
    FP_DEST_OPS,
    FP_SRC_OPS,
    NUM_REGS,
    OPCODES,
    OpClass,
    StaticInstruction,
    register_name,
)


class TestOpcodeTable:
    def test_every_opcode_has_valid_operand_spec(self):
        for spec in OPCODES.values():
            assert set(spec.operands) <= set("dsimt"), spec

    def test_conditional_branches_marked(self):
        assert OPCODES["bne"].is_conditional_branch
        assert OPCODES["beq"].is_conditional_branch
        assert not OPCODES["br"].is_conditional_branch
        assert not OPCODES["halt"].is_conditional_branch

    def test_memory_ops_have_memory_operand(self):
        for name in ("ld", "st", "fld", "fst"):
            assert "m" in OPCODES[name].operands

    def test_fp_ops_classified(self):
        for name in FP_DEST_OPS - {"fld"}:
            assert OPCODES[name].opclass is OpClass.FP
        for name in FP_SRC_OPS - {"fst"}:
            assert OPCODES[name].opclass is OpClass.FP


class TestLatencies:
    def test_alpha_21264_like_values(self):
        # Table 1: latencies match the Alpha 21264.
        assert BASE_LATENCY[OpClass.INT_ALU] == 1
        assert BASE_LATENCY[OpClass.INT_MUL] == 7
        assert BASE_LATENCY[OpClass.FP] == 4
        # 3-cycle load-to-use = 1 (here) + 2-cycle L1.
        assert BASE_LATENCY[OpClass.LOAD] == 1

    def test_every_class_has_a_latency(self):
        assert set(BASE_LATENCY) == set(OpClass)


class TestOpClass:
    def test_memory_property(self):
        assert OpClass.LOAD.is_memory
        assert OpClass.STORE.is_memory
        assert not OpClass.INT_ALU.is_memory
        assert not OpClass.BRANCH.is_memory


class TestRegisterName:
    def test_bounds(self):
        with pytest.raises(ValueError):
            register_name(NUM_REGS)
        with pytest.raises(ValueError):
            register_name(-1)


class TestStaticInstructionDisplay:
    def test_str_contains_opcode_and_registers(self):
        instr = StaticInstruction(
            pc=0, opcode="add", opclass=OpClass.INT_ALU, dest=1, srcs=(2, 3)
        )
        text = str(instr)
        assert "add" in text and "r1" in text and "r2" in text

    def test_str_shows_immediate(self):
        instr = StaticInstruction(
            pc=0, opcode="addi", opclass=OpClass.INT_ALU, dest=1, srcs=(2,), imm=7
        )
        assert "7" in str(instr)

    def test_str_shows_branch_target(self):
        instr = StaticInstruction(
            pc=0, opcode="br", opclass=OpClass.BRANCH, dest=None, srcs=(), target=5
        )
        assert "@5" in str(instr)
