"""Critical-path model tests: attribution invariants and known shapes."""

import pytest

from repro.core.config import clustered_machine, monolithic_machine
from repro.core.simulator import ClusteredSimulator
from repro.core.steering.simple import ModuloSteering
from repro.criticality.critical_path import (
    CATEGORIES,
    analyze_critical_path,
    critical_flags,
)
from repro.criticality.graph import validate_timing
from repro.criticality.slack import compute_global_slack
from repro.workloads.patterns import load_chain, parallel_chains, serial_chain
from repro.workloads.suite import get_kernel
from repro.core.rename import extract_dependences
from repro.frontend.branch_predictor import (
    GshareBranchPredictor,
    annotate_mispredictions,
)


def simulate(trace, config, steering=None, mispredicted=frozenset()):
    sim = ClusteredSimulator(config, steering=steering, max_cycles=200_000)
    return sim.run(trace, mispredicted=mispredicted)


def simulate_kernel(name, config, n=4000):
    spec = get_kernel(name)
    trace = spec.generate(n)
    deps = extract_dependences(trace)
    mis = frozenset(annotate_mispredictions(trace, GshareBranchPredictor()))
    sim = ClusteredSimulator(config, max_cycles=2_000_000)
    return sim.run(trace, deps, mis)


class TestAttributionInvariant:
    @pytest.mark.parametrize("pattern", [serial_chain(150), parallel_chains(6, 40)])
    def test_full_attribution_on_patterns(self, pattern):
        result = simulate(pattern, monolithic_machine())
        analysis = analyze_critical_path(result.records)
        assert analysis.attributed_cycles == analysis.total_cycles

    @pytest.mark.parametrize("clusters", [1, 2, 4, 8])
    def test_full_attribution_on_kernel(self, clusters):
        config = (
            monolithic_machine() if clusters == 1 else clustered_machine(clusters)
        )
        result = simulate_kernel("vpr", config, n=3000)
        analysis = analyze_critical_path(result.records)
        assert analysis.attributed_cycles == analysis.total_cycles

    def test_all_categories_non_negative(self):
        result = simulate_kernel("twolf", clustered_machine(4), n=3000)
        analysis = analyze_critical_path(result.records)
        assert all(analysis.breakdown[c] >= 0 for c in CATEGORIES)

    def test_merged_figure5_preserves_total(self):
        result = simulate_kernel("gcc", clustered_machine(2), n=2000)
        analysis = analyze_critical_path(result.records)
        assert sum(analysis.merged_for_figure5().values()) == (
            analysis.attributed_cycles
        )


class TestKnownShapes:
    def test_serial_chain_is_execute_dominated(self):
        result = simulate(serial_chain(300), monolithic_machine())
        analysis = analyze_critical_path(result.records)
        assert analysis.breakdown["execute"] > 0.8 * analysis.total_cycles

    def test_split_chain_shows_forwarding_delay(self):
        config = clustered_machine(2, forwarding_latency=2)
        result = simulate(serial_chain(200), config, steering=ModuloSteering())
        analysis = analyze_critical_path(result.records)
        # Every hop crosses clusters: ~2 of every 3 cycles are forwarding.
        assert analysis.breakdown["fwd_delay"] > 0.4 * analysis.total_cycles

    def test_cache_misses_show_memory_latency(self):
        result = simulate(load_chain(100, stride_bytes=65536), monolithic_machine())
        analysis = analyze_critical_path(result.records)
        assert analysis.breakdown["mem_latency"] > 0.5 * analysis.total_cycles

    def test_mispredict_heavy_kernel_shows_branch_cycles(self):
        result = simulate_kernel("gcc", monolithic_machine(), n=4000)
        analysis = analyze_critical_path(result.records)
        assert analysis.breakdown["br_mispredict"] > 0

    def test_chain_on_path_marks_chain_critical(self):
        result = simulate(serial_chain(100), monolithic_machine())
        analysis = analyze_critical_path(result.records)
        # Nearly every chain link lies on the critical path.
        assert len(analysis.critical_indices) > 90


class TestChunkedFlags:
    def test_flags_cover_trace_length(self):
        result = simulate_kernel("parser", monolithic_machine(), n=3000)
        flags = critical_flags(result.records, chunk_size=512)
        assert len(flags) == len(result.records)

    def test_some_critical_and_some_not(self):
        result = simulate_kernel("vpr", monolithic_machine(), n=4000)
        flags = critical_flags(result.records, chunk_size=512)
        assert any(flags) and not all(flags)

    def test_serial_chain_all_chunks_mark_chain(self):
        result = simulate(serial_chain(500), monolithic_machine())
        flags = critical_flags(result.records, chunk_size=128)
        assert sum(flags) > 450


class TestTimingModelConsistency:
    @pytest.mark.parametrize("name", ["vpr", "gcc", "mcf"])
    def test_no_edge_violations(self, name):
        result = simulate_kernel(name, clustered_machine(4), n=2500)
        assert validate_timing(result.records, result.config) == []

    def test_slack_non_negative_and_zero_somewhere(self):
        result = simulate_kernel("gzip", clustered_machine(4), n=2500)
        slacks = compute_global_slack(result.records, result.config)
        assert min(slacks) >= 0

    def test_serial_chain_has_zero_slack_spine(self):
        result = simulate(serial_chain(200), monolithic_machine())
        slacks = compute_global_slack(result.records, result.config)
        zero = sum(1 for s in slacks if s == 0)
        assert zero > 150

    def test_slack_requires_full_run(self):
        result = simulate(serial_chain(50), monolithic_machine())
        with pytest.raises(ValueError):
            compute_global_slack(result.records[10:], result.config)


class TestErrors:
    def test_empty_records_rejected(self):
        with pytest.raises(ValueError):
            analyze_critical_path([])
