"""Unit tests for result containers."""

import pytest

from repro.core.config import monolithic_machine
from repro.core.results import IlpProfile, SimulationResult
from repro.core.simulator import ClusteredSimulator
from repro.workloads.patterns import serial_chain


@pytest.fixture(scope="module")
def small_result():
    sim = ClusteredSimulator(monolithic_machine(), max_cycles=10_000)
    return sim.run(serial_chain(50), mispredicted=frozenset())


class TestSimulationResult:
    def test_instruction_count(self, small_result):
        assert small_result.instructions == 50

    def test_cpi_ipc_reciprocal(self, small_result):
        assert small_result.cpi * small_result.ipc == pytest.approx(1.0)

    def test_cycles_matches_last_commit(self, small_result):
        assert small_result.cycles == small_result.records[-1].commit_time + 1

    def test_no_clusters_crossed_on_monolithic(self, small_result):
        assert small_result.global_values == 0
        assert small_result.global_values_per_instruction == 0.0

    def test_steering_and_scheduler_names_recorded(self, small_result):
        assert small_result.steering_name == "dependence"
        assert small_result.scheduler_name == "oldest"

    def test_contention_total_non_negative(self, small_result):
        assert small_result.total_contention_cycles >= 0


class TestIlpProfileEdgeCases:
    def test_empty_profile_series(self):
        assert IlpProfile().series() == []

    def test_unknown_available_achieved_zero(self):
        assert IlpProfile().achieved(3) == 0.0

    def test_series_unbounded(self):
        profile = IlpProfile()
        profile.record(100, 8)
        assert profile.series() == [(100, 8.0)]
