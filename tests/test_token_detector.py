"""Tests for the token-passing criticality detector."""

import pytest

from repro.core.config import monolithic_machine
from repro.core.simulator import ClusteredSimulator
from repro.criticality.loc import LocPredictor, PredictorSuite
from repro.criticality.token_detector import TokenPassingTrainer
from repro.criticality.trainer import ChunkedCriticalityTrainer
from repro.workloads.patterns import mixed_criticality, parallel_chains, serial_chain
from repro.workloads.suite import get_kernel


def run_with_detector(trace, detector_factory, config=None):
    suite = PredictorSuite(loc_predictor=LocPredictor(mode="exact"))
    trainer = detector_factory(suite)
    sim = ClusteredSimulator(
        config or monolithic_machine(), trainer=trainer, max_cycles=500_000
    )
    sim.run(trace, mispredicted=frozenset())
    return suite, trainer


class TestTokenMechanics:
    def test_serial_chain_tokens_survive(self):
        # Every instruction of a serial chain gates all later execution.
        suite, trainer = run_with_detector(
            serial_chain(8000),
            lambda s: TokenPassingTrainer(s, plant_interval=16,
                                          survival_distance=320),
        )
        assert trainer.tokens_planted > 10
        assert trainer.survival_rate > 0.9

    def test_oversubscribed_parallel_chains_tokens_die(self):
        # 32 independent chains saturate the 8-wide machine: dispatch
        # backpressure, not any single chain's execution, gates progress
        # (producers complete before their consumers even dispatch), so a
        # token following one chain dies.
        trace = parallel_chains(32, 300)
        suite, trainer = run_with_detector(
            trace,
            lambda s: TokenPassingTrainer(s, plant_interval=16,
                                          survival_distance=320),
        )
        assert trainer.tokens_planted > 10
        assert trainer.survival_rate < 0.3

    def test_dead_end_filler_tokens_die(self):
        # One multiply spine (critical) among dead-end filler (max slack):
        # filler tokens strand and die, spine tokens survive.
        trace = mixed_criticality(groups=2000, filler_per_group=6)
        suite, trainer = run_with_detector(
            trace,
            lambda s: TokenPassingTrainer(s, plant_interval=16,
                                          survival_distance=320),
        )
        assert trainer.tokens_planted > 10
        assert 0.0 < trainer.survival_rate < 1.0
        # The LoC table separates the populations: the spine PC (0) hot,
        # filler PCs cold.
        assert suite.loc(0) > 0.8
        filler_locs = [suite.loc(pc) for pc in (1, 2, 3)]
        assert all(v < 0.3 for v in filler_locs), filler_locs

    def test_single_live_token(self):
        suite = PredictorSuite()
        trainer = TokenPassingTrainer(suite, plant_interval=8)
        sim = ClusteredSimulator(
            monolithic_machine(), trainer=trainer, max_cycles=100_000
        )
        sim.run(serial_chain(500), mispredicted=frozenset())
        # Tokens resolve before new ones plant; totals are consistent.
        assert trainer.tokens_survived <= trainer.tokens_planted

    def test_finish_resolves_trailing_token(self):
        suite = PredictorSuite()
        trainer = TokenPassingTrainer(
            suite, plant_interval=4, survival_distance=10_000
        )
        sim = ClusteredSimulator(
            monolithic_machine(), trainer=trainer, max_cycles=100_000
        )
        sim.run(serial_chain(100), mispredicted=frozenset())
        assert trainer._tokens == []  # finish() ran

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TokenPassingTrainer(PredictorSuite(), plant_interval=0)
        with pytest.raises(ValueError):
            TokenPassingTrainer(PredictorSuite(), survival_distance=0)
        with pytest.raises(ValueError):
            # Must exceed the gating range.
            TokenPassingTrainer(PredictorSuite(), survival_distance=200)


class TestAgreementWithChunkedAnalysis:
    def test_loc_estimates_correlate_on_kernel(self):
        # The hardware detector and the exact chunked analysis must agree
        # on which static instructions are likely critical.
        spec = get_kernel("gzip")
        trace = spec.generate(8000)

        token_suite, __ = run_with_detector(
            trace,
            lambda s: TokenPassingTrainer(s, plant_interval=8,
                                          survival_distance=320),
        )
        chunk_suite = PredictorSuite(loc_predictor=LocPredictor(mode="exact"))
        sim = ClusteredSimulator(
            monolithic_machine(),
            trainer=ChunkedCriticalityTrainer(chunk_suite),
            max_cycles=500_000,
        )
        sim.run(trace, mispredicted=frozenset())

        shared = [
            pc
            for pc in chunk_suite.loc_predictor.known_pcs()
            if pc in dict.fromkeys(token_suite.loc_predictor.known_pcs())
        ]
        assert len(shared) >= 3
        # Rank agreement: the chunked-top PC should be clearly hotter than
        # the chunked-bottom PC under the token detector too.
        ranked = sorted(shared, key=chunk_suite.loc, reverse=True)
        hot, cold = ranked[0], ranked[-1]
        if chunk_suite.loc(hot) - chunk_suite.loc(cold) > 0.3:
            assert token_suite.loc(hot) >= token_suite.loc(cold)
