"""End-to-end experiment-harness tests on a reduced workload scale.

These are integration tests: they run the actual figure reproductions on
two small benchmarks and check structure plus the paper's directional
claims (not absolute values).
"""

import math

import pytest

from repro.experiments.figure import FigureData
from repro.experiments.harness import Workbench
from repro.specs.policy import resolve_policy
from repro.experiments.fig02 import run_figure2
from repro.experiments.fig04 import run_figure4
from repro.experiments.fig05 import run_figure5
from repro.experiments.fig06 import run_figure6
from repro.experiments.fig08 import run_figure8
from repro.experiments.fig14 import run_figure14
from repro.experiments.fig15 import run_figure15
from repro.experiments.intext import (
    run_consumer_stats,
    run_global_values,
    run_loc_priority_study,
)
from repro.workloads.suite import get_kernel


@pytest.fixture(scope="module")
def bench():
    return Workbench(
        instructions=3000,
        benchmarks=[get_kernel("vpr"), get_kernel("gzip")],
    )


class TestFigureData:
    def test_row_arity_checked(self):
        figure = FigureData("f", "t", ["a", "b"])
        with pytest.raises(ValueError):
            figure.add_row(1)

    def test_column_and_row_lookup(self):
        figure = FigureData("f", "t", ["name", "x"])
        figure.add_row("vpr", 1.5)
        assert figure.column("x") == [1.5]
        assert figure.row_for("vpr")[1] == 1.5
        with pytest.raises(KeyError):
            figure.row_for("nope")

    def test_str_renders(self):
        figure = FigureData("Figure 0", "demo", ["a"], notes=["hello"])
        figure.add_row(1)
        text = str(figure)
        assert "Figure 0" in text and "hello" in text


class TestBuildPolicy:
    @pytest.mark.parametrize("name", ["dependence", "focused", "l", "s", "p"])
    def test_all_policies_construct(self, name):
        steering, scheduler, needs = resolve_policy(name).build()
        assert steering is not None and scheduler is not None
        assert needs == (name != "dependence")

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            resolve_policy("telepathic")


class TestWorkbench:
    def test_prepare_caches(self, bench):
        spec = get_kernel("vpr")
        assert bench.prepare(spec) is bench.prepare(spec)

    def test_run_caches(self, bench):
        from repro.core.config import monolithic_machine

        spec = get_kernel("vpr")
        a = bench.run(spec, monolithic_machine(), "dependence")
        b = bench.run(spec, monolithic_machine(), "dependence")
        assert a is b

    def test_invalid_instruction_count(self):
        with pytest.raises(ValueError):
            Workbench(instructions=0)


class TestFigures:
    def test_figure2_idealized_loss_is_small(self, bench):
        figure = run_figure2(bench)
        ave = figure.row_for("AVE")
        # Idealized potential: within ~10% even on tiny traces (paper: 2%).
        assert all(value < 1.10 for value in ave[1:])

    def test_figure4_losses_grow_with_clusters(self, bench):
        figure = run_figure4(bench)
        ave = figure.row_for("AVE")
        assert ave[1] <= ave[2] <= ave[3]
        assert ave[3] > 1.0

    def test_figure4_worse_than_figure2(self, bench):
        ideal = run_figure2(bench).row_for("AVE")
        actual = run_figure4(bench).row_for("AVE")
        assert actual[3] > ideal[3]

    def test_figure5_stacks_sum_to_normalized_cpi(self, bench):
        figure = run_figure5(bench)
        for row in figure.rows:
            segments = row[2:-1]
            assert sum(segments) == pytest.approx(row[-1])

    def test_figure5_monolithic_has_no_fwd_delay(self, bench):
        figure = run_figure5(bench)
        fwd_index = list(figure.headers).index("fwd_delay")
        for row in figure.rows:
            if row[1] == 1:
                assert row[fwd_index] == 0.0

    def test_figure6_nonnegative_events(self, bench):
        figure = run_figure6(bench)
        for row in figure.rows:
            assert all(v >= 0 for v in row[2:])

    def test_figure8_distribution_sums_to_100(self, bench):
        figure = run_figure8(bench)
        assert sum(figure.column("percent")) == pytest.approx(100.0)

    def test_figure8_mass_at_low_loc(self, bench):
        figure = run_figure8(bench)
        # Most dynamic instructions are rarely critical (paper: 53% in 0-5%).
        assert figure.rows[0][1] > 20.0

    def test_figure14_policies_do_not_regress_much_on_average(self, bench):
        figure = run_figure14(bench)
        ave8 = {
            row[2]: row[3] for row in figure.rows if row[0] == "AVE" and row[1] == 8
        }
        assert ave8["l"] <= ave8["focused"] * 1.02
        assert ave8["p"] <= ave8["focused"] * 1.02

    def test_figure15_achieved_bounded_by_width(self, bench):
        figure = run_figure15(bench)
        for row in figure.rows:
            assert row[1] <= 8.0 + 1e-9

    def test_global_values_reported(self, bench):
        figure = run_global_values(bench)
        assert len(figure.rows) == 3
        for row in figure.rows:
            assert 0.0 <= row[1] <= 1.5

    def test_loc_priority_ordering(self, bench):
        figure = run_loc_priority_study(bench)
        oracle = figure.row_for("oracle")
        binary = figure.row_for("binary")
        # Binary-only priorities are never better than the oracle.
        assert binary[3] >= oracle[3] - 1e-9

    def test_consumer_stats_rows(self, bench):
        figure = run_consumer_stats(bench)
        ave = figure.row_for("AVE")
        assert all(0.0 <= v <= 1.0 for v in ave[1:])

    def test_no_nan_in_benchmark_rows(self, bench):
        figure = run_figure14(bench)
        for row in figure.rows:
            if row[0] != "AVE":
                assert not any(
                    isinstance(v, float) and math.isnan(v) for v in row[3:]
                )
