"""Invariants of the event-driven wakeup/ready heaps.

:mod:`repro.core.wakeup` documents three invariants; these tests enforce
them against a brute-force shadow model driven by randomized
dispatch/issue/commit-shaped operation sequences, plus one integration
check that the simulator's memoized ``cluster_ready_pressure`` stays
exact while a real steering policy queries it mid-run.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import clustered_machine
from repro.core.simulator import ClusteredSimulator
from repro.core.steering.readiness import ReadinessAwareSteering
from repro.core.scheduling.policies import LocScheduler
from repro.core.wakeup import ClusterWakeupQueue
from repro.criticality.loc import LocPredictor, PredictorSuite
from repro.criticality.trainer import ChunkedCriticalityTrainer
from repro.experiments.parallel import prepare_workload


class ShadowModel:
    """Brute-force mirror of one queue: plain lists, no heaps."""

    def __init__(self):
        self.waiting: list[tuple[int, int, object]] = []
        self.ready: list[object] = []

    def schedule(self, ready_time, index, entry):
        self.waiting.append((ready_time, index, entry))

    def drain(self, now):
        due = [w for w in self.waiting if w[0] <= now]
        self.waiting = [w for w in self.waiting if w[0] > now]
        self.ready.extend(w[2] for w in due)
        return len(due)

    def pop_ready(self):
        best = min(self.ready)
        self.ready.remove(best)
        return best

    def pressure(self, now, horizon=0):
        deadline = now + horizon
        return len(self.ready) + sum(1 for w in self.waiting if w[0] <= deadline)


def random_walk(seed: int, steps: int = 400):
    """Drive queue and shadow through one random op sequence, checking
    every invariant after every step."""
    rng = random.Random(seed)
    queue = ClusterWakeupQueue()
    shadow = ShadowModel()
    now = 0
    next_index = 0
    popped_log = []

    for __ in range(steps):
        op = rng.random()
        if op < 0.45:
            # Dispatch: wakeup times are always strictly in the future.
            ready_time = now + rng.randint(1, 12)
            entry = ((rng.randint(0, 3), next_index), ready_time)
            queue.schedule(ready_time, next_index, entry)
            shadow.schedule(ready_time, next_index, entry)
            next_index += 1
        elif op < 0.65:
            # Time advances (maybe several cycles), then the issue phase
            # drains whatever became due.
            now += rng.randint(1, 6)
            moved = queue.drain(now)
            assert moved == shadow.drain(now)
        elif op < 0.85 and queue.ready_count():
            # Issue: pop the best-priority entry; sometimes port-block it
            # back in (requeue must preserve order exactly).
            entry = queue.pop_ready()
            assert entry == shadow.pop_ready()
            popped_log.append((now, entry))
            if rng.random() < 0.3:
                queue.requeue_ready(entry)
                shadow.ready.append(entry)
        else:
            # Steering query between phases: pressure at a random horizon.
            horizon = rng.randint(0, 8)
            assert queue.pressure(now, horizon) == shadow.pressure(now, horizon)

        # Global invariants, re-checked after every operation.
        assert len(queue) == len(shadow.ready) + len(shadow.waiting)
        assert queue.ready_count() == len(shadow.ready)
        nxt = queue.next_wakeup()
        if shadow.waiting:
            assert nxt == min(w[0] for w in shadow.waiting)
            # Time only advances through the drain op above, so nothing
            # due may ever linger in the wakeup heap: every pending ready
            # time is strictly in the future.
            assert nxt > now
        else:
            assert nxt is None
        for horizon in (0, 2):
            assert queue.pressure(now, horizon) == shadow.pressure(now, horizon)

    # An entry never surfaced before the ready time it was scheduled with.
    for popped_at, entry in popped_log:
        assert entry[1] <= popped_at, (
            f"entry with ready_time={entry[1]} issued at cycle {popped_at}"
        )
    return popped_log


@pytest.mark.parametrize("seed", range(12))
def test_random_walk_matches_brute_force(seed):
    popped = random_walk(seed)
    # The walk must actually exercise the issue path to prove anything.
    assert popped


def test_drain_is_exact_boundary():
    """drain(now) yields exactly the entries with ready_time <= now."""
    queue = ClusterWakeupQueue()
    for index, t in enumerate((5, 3, 7, 3, 9)):
        queue.schedule(t, index, (t, index))
    assert queue.drain(2) == 0
    assert queue.drain(3) == 2
    assert sorted(entry[0] for entry in queue.ready) == [3, 3]
    assert queue.next_wakeup() == 5
    assert queue.drain(8) == 2
    assert queue.next_wakeup() == 9


def test_version_counts_every_mutation():
    queue = ClusterWakeupQueue()
    stamps = [queue.version]
    queue.schedule(4, 0, ((0, 0), 4))
    stamps.append(queue.version)
    queue.drain(4)
    stamps.append(queue.version)
    queue.pop_ready()
    stamps.append(queue.version)
    queue.requeue_ready(((0, 0), 4))
    stamps.append(queue.version)
    assert stamps == sorted(set(stamps)), "version must strictly increase"


def test_simulator_pressure_memo_is_exact():
    """The memoized ready-pressure view equals a fresh recount mid-run."""
    checked = 0

    class CheckedSimulator(ClusteredSimulator):
        def cluster_ready_pressure(self, cluster, horizon=0):
            nonlocal checked
            memoized = super().cluster_ready_pressure(cluster, horizon)
            fresh = self._queues[cluster].pressure(self.now, horizon)
            assert memoized == fresh, (
                f"memo drift at cycle {self.now}, cluster {cluster}, "
                f"horizon {horizon}: memo={memoized} fresh={fresh}"
            )
            checked += 1
            return memoized

    prepared = prepare_workload("gcc", 1500, 0)
    suite = PredictorSuite(loc_predictor=LocPredictor(mode="probabilistic", seed=0))
    sim = CheckedSimulator(
        clustered_machine(4, forwarding_latency=2),
        steering=ReadinessAwareSteering(),
        scheduler=LocScheduler(),
        predictors=suite,
        trainer=ChunkedCriticalityTrainer(suite),
    )
    sim.run(prepared.trace, prepared.dependences, prepared.mispredicted)
    assert checked > 100, "the readiness policy must actually query pressure"
