"""Unit tests for dependence extraction."""

from repro.core.rename import build_consumer_lists, extract_dependences
from repro.vm.assembler import assemble
from repro.vm.interpreter import run


def deps_of(source, n=1000, memory=None):
    trace = run(assemble(source), n, initial_memory=memory)
    return trace, extract_dependences(trace)


class TestRegisterDependences:
    def test_simple_producer_consumer(self):
        __, deps = deps_of("li r1, 1\nadd r2, r1, r1\nhalt")
        assert deps[1].reg_deps == (0,)

    def test_duplicate_sources_deduplicated(self):
        __, deps = deps_of("li r1, 1\nadd r2, r1, r1\nhalt")
        assert len(deps[1].reg_deps) == 1

    def test_last_writer_wins(self):
        __, deps = deps_of("li r1, 1\nli r1, 2\nadd r2, r1, r1\nhalt")
        assert deps[2].reg_deps == (1,)

    def test_initial_registers_have_no_producer(self):
        __, deps = deps_of("add r2, r1, r3\nhalt")
        assert deps[0].reg_deps == ()

    def test_loop_carried_dependence(self):
        trace, deps = deps_of(
            "li r1, 3\nloop: subi r1, r1, 1\nbne r1, loop\nhalt"
        )
        # Second subi (index 3) depends on the first subi (index 1).
        assert trace[3].opcode == "subi"
        assert deps[3].reg_deps == (1,)


class TestMemoryDependences:
    def test_load_depends_on_matching_store(self):
        __, deps = deps_of(
            "li r1, 9\nli r2, 5\nst r1, 0(r2)\nld r3, 0(r2)\nhalt"
        )
        assert deps[3].mem_dep == 2

    def test_load_ignores_store_to_other_address(self):
        __, deps = deps_of(
            "li r1, 9\nli r2, 5\nst r1, 1(r2)\nld r3, 0(r2)\nhalt"
        )
        assert deps[3].mem_dep is None

    def test_latest_store_wins(self):
        __, deps = deps_of(
            """
            li r1, 9
            li r2, 5
            st r1, 0(r2)
            st r1, 0(r2)
            ld r3, 0(r2)
            halt
            """
        )
        assert deps[4].mem_dep == 3

    def test_mem_dep_not_duplicated_when_register_dep_exists(self):
        # If the store is already a register producer, mem_dep is dropped.
        __, deps = deps_of("li r2, 5\nst r2, 0(r2)\nld r3, 0(r2)\nhalt")
        load_deps = deps[2]
        assert load_deps.all_deps.count(1) <= 1

    def test_all_deps_combines(self):
        __, deps = deps_of(
            "li r1, 9\nli r2, 5\nst r1, 0(r2)\nld r3, 0(r2)\nhalt"
        )
        assert set(deps[3].all_deps) == {1, 2}


class TestConsumerLists:
    def test_inversion(self):
        __, deps = deps_of("li r1, 1\nadd r2, r1, r1\nsub r3, r1, r2\nhalt")
        consumers = build_consumer_lists(deps)
        assert consumers[0] == [1, 2]
        assert consumers[1] == [2]
        assert consumers[2] == []
