"""Scheduling-policy tests: who issues first (Section 4's core question)."""

from repro.core.config import clustered_machine
from repro.core.instruction import InFlight
from repro.core.rename import Dependences
from repro.core.scheduling.policies import (
    CriticalFirstScheduler,
    LocScheduler,
    OldestFirstScheduler,
)
from repro.core.simulator import ClusteredSimulator
from repro.vm.isa import OpClass
from repro.vm.trace import DynamicInstruction


def make(index, loc=0.0, critical=False):
    instr = DynamicInstruction(
        index=index, pc=index, opcode="add", opclass=OpClass.INT_ALU,
        dest=1, srcs=(), next_pc=index + 1,
    )
    rec = InFlight(instr, Dependences((), None))
    rec.loc = loc
    rec.predicted_critical = critical
    return rec


def order(policy, records):
    return [r.index for r in sorted(records, key=policy.priority_key)]


class TestOldestFirst:
    def test_program_order(self):
        records = [make(3), make(1), make(2)]
        assert order(OldestFirstScheduler(), records) == [1, 2, 3]


class TestCriticalFirst:
    def test_critical_beats_older_noncritical(self):
        records = [make(1, critical=False), make(5, critical=True)]
        assert order(CriticalFirstScheduler(), records) == [5, 1]

    def test_ties_break_to_older(self):
        # The Figure 7 pathology: both a (older, rib) and b (younger,
        # spine) are predicted critical; binary scheduling picks a.
        rib_a = make(1, critical=True)
        spine_b = make(2, critical=True)
        assert order(CriticalFirstScheduler(), [spine_b, rib_a]) == [1, 2]


class TestLocScheduler:
    def test_higher_loc_first(self):
        # Same scenario, LoC-resolved: the spine (more often critical)
        # beats the older rib -- Section 4's fix.
        rib_a = make(1, loc=0.3)
        spine_b = make(2, loc=0.9)
        assert order(LocScheduler(), [rib_a, spine_b]) == [2, 1]

    def test_equal_loc_breaks_to_older(self):
        records = [make(2, loc=0.5), make(1, loc=0.5)]
        assert order(LocScheduler(), records) == [1, 2]


class TestEndToEndFigure7:
    """The vpr spine/rib scenario on a 1-wide cluster."""

    def build_trace(self, iterations=40):
        # spine: r1 <- r1 (critical chain); rib: r2 <- r1 (branch feeder,
        # critical only on its last instance).  Both ready simultaneously.
        trace = []
        index = 0
        trace.append(DynamicInstruction(
            index=0, pc=0, opcode="add", opclass=OpClass.INT_ALU,
            dest=1, srcs=(), next_pc=1))
        index = 1
        for __ in range(iterations):
            trace.append(DynamicInstruction(
                index=index, pc=1, opcode="add", opclass=OpClass.INT_ALU,
                dest=2, srcs=(1,), next_pc=index + 1))  # rib 'a' (older)
            trace.append(DynamicInstruction(
                index=index + 1, pc=2, opcode="add", opclass=OpClass.INT_ALU,
                dest=1, srcs=(1,), next_pc=index + 2))  # spine 'b'
            index += 2
        return trace

    class SpineLocPredictors:
        """LoC oracle for the scenario: the spine is usually critical."""

        def predict_critical(self, pc):
            return pc in (1, 2)  # both predicted critical (binary view)

        def loc(self, pc):
            return {0: 0.5, 1: 0.2, 2: 0.9}[pc]

    def run(self, scheduler):
        config = clustered_machine(8)  # 1-wide clusters
        sim = ClusteredSimulator(
            config,
            scheduler=scheduler,
            predictors=self.SpineLocPredictors(),
            max_cycles=100_000,
        )
        return sim.run(self.build_trace(), mispredicted=frozenset())

    def test_loc_scheduling_beats_binary_on_spine_rib(self):
        binary = self.run(CriticalFirstScheduler())
        loc = self.run(LocScheduler())
        # Binary ties break to the rib, stalling the spine every iteration;
        # LoC keeps the spine moving.
        assert loc.cycles < binary.cycles
