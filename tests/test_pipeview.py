"""Tests for the text pipeline viewer."""

import pytest

from repro.analysis.pipeview import contention_hotspots, render_pipeline
from repro.core.config import clustered_machine, monolithic_machine
from repro.core.simulator import ClusteredSimulator
from repro.workloads.patterns import divergent_tree, parallel_chains, serial_chain


def simulate(trace, config=None):
    sim = ClusteredSimulator(config or monolithic_machine(), max_cycles=100_000)
    return sim.run(trace, mispredicted=frozenset())


class TestRenderPipeline:
    def test_one_line_per_instruction_plus_ruler(self):
        result = simulate(serial_chain(30))
        text = render_pipeline(result.records, start=5, count=10)
        lines = text.splitlines()
        assert len(lines) == 11

    def test_markers_in_order(self):
        result = simulate(serial_chain(30))
        text = render_pipeline(result.records, start=10, count=1)
        lane = text.splitlines()[1]
        # D before E before C.
        assert lane.index("D") < lane.index("E") < lane.index("C")

    def test_waiting_marker_for_dependent_instruction(self):
        result = simulate(serial_chain(50))
        text = render_pipeline(result.records, start=40, count=5)
        assert "w" in text  # chain tails wait for operands

    def test_contention_marker_on_oversubscribed_machine(self):
        # A wide fan-out makes all consumers ready at once; dependence
        # steering collocates them on the producer's 1-wide cluster, so
        # they serialize on its single issue port (Figure 12's pathology).
        result = simulate(divergent_tree(fanout=8, groups=30), clustered_machine(8))
        hotspots = contention_hotspots(result.records, top=1)
        assert hotspots, "expected contention from serialized fan-out consumers"
        anchor = hotspots[0][0]
        text = render_pipeline(
            result.records, start=max(0, anchor - 2), count=8, max_width=200
        )
        assert "r" in text

    def test_clipping_note(self):
        result = simulate(serial_chain(300))
        text = render_pipeline(result.records, start=0, count=300, max_width=50)
        assert "clipped" in text

    def test_empty_window_rejected(self):
        result = simulate(serial_chain(10))
        with pytest.raises(ValueError):
            render_pipeline(result.records, start=100, count=5)

    def test_cluster_shown(self):
        result = simulate(parallel_chains(4, 10), clustered_machine(4))
        text = render_pipeline(result.records, start=0, count=8)
        assert " c" in text


class TestContentionHotspots:
    def test_empty_when_no_contention(self):
        result = simulate(parallel_chains(4, 30))
        assert contention_hotspots(result.records) == []

    def test_sorted_worst_first(self):
        result = simulate(divergent_tree(fanout=8, groups=40), clustered_machine(8))
        hotspots = contention_hotspots(result.records, top=10)
        waits = [w for __, __, w in hotspots]
        assert waits == sorted(waits, reverse=True)
