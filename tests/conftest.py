"""Shared pytest configuration: explicit hypothesis profiles.

Hypothesis's implicit defaults (200ms deadline, random example order) are
wrong for both of this suite's environments:

* locally (``dev``) a cold first example legitimately takes longer than
  the deadline -- trace prep dominates -- so the deadline is lifted while
  randomized exploration stays on, letting every local run probe traces
  the fixed matrices do not cover;
* in CI (``ci``, selected whenever the ``CI`` environment variable is
  set) runs are additionally **derandomized** so a red build reproduces
  exactly and a flake cannot masquerade as a property violation.

Tests that need tighter settings still override per-test via
``@settings(...)``; profiles only change the defaults.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "dev",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("ci" if os.environ.get("CI") else "dev")
