"""Tests for the experiment Workbench and policy construction.

Everything here imports from :mod:`repro.api` -- the stable facade must
cover the whole harness workflow without deep imports.
"""

import pytest

from repro.api import (
    CriticalFirstScheduler,
    CriticalitySteering,
    DependenceSteering,
    LocScheduler,
    OldestFirstScheduler,
    Workbench,
    build_policy,
    get_kernel,
    monolithic_machine,
    resolve_policy,
)


def _stack(name):
    return resolve_policy(name).build()


@pytest.fixture(scope="module")
def bench():
    return Workbench(instructions=2000, benchmarks=[get_kernel("gcc")])


class TestBuildPolicy:
    def test_dependence_stack(self):
        steering, scheduler, needs = _stack("dependence")
        assert isinstance(steering, DependenceSteering)
        assert isinstance(scheduler, OldestFirstScheduler)
        assert not needs

    def test_focused_stack(self):
        steering, scheduler, needs = _stack("focused")
        assert isinstance(steering, CriticalitySteering)
        assert steering.config.preference == "binary"
        assert isinstance(scheduler, CriticalFirstScheduler)
        assert needs

    def test_l_stack_uses_loc(self):
        steering, scheduler, __ = _stack("l")
        assert steering.config.preference == "loc"
        assert not steering.config.stall_over_steer
        assert isinstance(scheduler, LocScheduler)

    def test_s_stack_adds_stalling(self):
        steering, __, __n = _stack("s")
        assert steering.config.stall_over_steer
        assert not steering.config.proactive
        assert steering.config.stall_loc_threshold == pytest.approx(0.30)

    def test_p_stack_adds_proactive(self):
        steering, __, __n = _stack("p")
        assert steering.config.stall_over_steer
        assert steering.config.proactive

    def test_fresh_instances_each_call(self):
        a, __, __n = _stack("s")
        b, __, __n2 = _stack("s")
        assert a is not b

    def test_legacy_shim_warns_and_matches(self):
        with pytest.warns(DeprecationWarning):
            steering, scheduler, needs = build_policy("s")
        spec_steering, spec_scheduler, spec_needs = _stack("s")
        assert type(steering) is type(spec_steering)
        assert steering.config == spec_steering.config
        assert type(scheduler) is type(spec_scheduler)
        assert needs == spec_needs


class TestWorkbenchCaching:
    def test_distinct_configs_not_conflated(self, bench):
        spec = get_kernel("gcc")
        four = bench.run(spec, bench.clustered(4), "dependence")
        eight = bench.run(spec, bench.clustered(8), "dependence")
        assert four is not eight

    def test_forwarding_latency_part_of_key(self, bench):
        spec = get_kernel("gcc")
        fast = bench.run(spec, bench.clustered(4, forwarding_latency=1), "dependence")
        slow = bench.run(spec, bench.clustered(4, forwarding_latency=4), "dependence")
        assert fast is not slow
        assert fast.cycles <= slow.cycles

    def test_policies_not_conflated(self, bench):
        spec = get_kernel("gcc")
        a = bench.run(spec, bench.clustered(4), "dependence")
        b = bench.run(spec, bench.clustered(4), "focused")
        assert a is not b

    def test_monolithic_baseline_shape(self, bench):
        result = bench.monolithic_baseline(get_kernel("gcc"))
        assert result.config.name == "1x8w"


class TestWorkbenchModes:
    def test_loc_mode_plumbs_through(self):
        bench = Workbench(
            instructions=1500,
            benchmarks=[get_kernel("gcc")],
            loc_mode="exact",
        )
        result = bench.run(get_kernel("gcc"), monolithic_machine(), "l")
        assert result.instructions == 1500

    def test_invalid_loc_mode_raises_on_run(self):
        bench = Workbench(
            instructions=1000,
            benchmarks=[get_kernel("gcc")],
            loc_mode="bogus",
        )
        with pytest.raises(ValueError):
            bench.run(get_kernel("gcc"), monolithic_machine(), "l")

    def test_seed_changes_trace(self):
        a = Workbench(instructions=1000, seed=0).prepare(get_kernel("gcc"))
        b = Workbench(instructions=1000, seed=1).prepare(get_kernel("gcc"))
        assert a.trace != b.trace

    def test_prepared_is_annotated(self, bench):
        prepared = bench.prepare(get_kernel("gcc"))
        assert len(prepared.trace) == len(prepared.dependences) == 2000
        assert all(i in range(2000) for i in prepared.mispredicted)


class TestCacheKeyCompleteness:
    def test_bandwidth_configs_not_conflated(self):
        import dataclasses

        from repro.api import clustered_machine

        bench = Workbench(instructions=1200, benchmarks=[get_kernel("gcc")])
        wide = clustered_machine(8)
        narrow = dataclasses.replace(wide, forwarding_bandwidth=1)
        a = bench.run(get_kernel("gcc"), wide, "dependence")
        b = bench.run(get_kernel("gcc"), narrow, "dependence")
        assert a is not b
