"""Unit tests for readiness-aware load balancing."""

import pytest

from repro.core.instruction import SteerCause
from repro.core.steering.readiness import (
    ReadinessAwareSteering,
    least_ready_pressure_cluster,
)
from tests.test_steering import FakeMachine, add_producer, make_inflight


class PressureMachine(FakeMachine):
    """FakeMachine with a configurable ready-pressure vector."""

    def __init__(self, pressure, **kwargs):
        super().__init__(**kwargs)
        self.pressure = pressure

    def cluster_ready_pressure(self, cluster, horizon=0):
        return self.pressure[cluster]


class TestLeastReadyPressure:
    def test_prefers_lowest_pressure(self):
        machine = PressureMachine([5, 0, 3, 2])
        assert least_ready_pressure_cluster(machine, horizon=2) == 1

    def test_skips_full_windows(self):
        machine = PressureMachine([5, 0, 3, 2])
        machine.free[1] = 0
        assert least_ready_pressure_cluster(machine, horizon=2) == 3

    def test_ties_break_by_load(self):
        machine = PressureMachine([2, 2, 2, 2])
        machine.load = [4, 1, 3, 2]
        assert least_ready_pressure_cluster(machine, horizon=2) == 1

    def test_none_when_everything_full(self):
        machine = PressureMachine([0, 0, 0, 0])
        machine.free = [0, 0, 0, 0]
        assert least_ready_pressure_cluster(machine, horizon=2) is None


class TestReadinessAwareSteering:
    def test_no_producer_case_uses_pressure(self):
        machine = PressureMachine([5, 0, 3, 2])
        machine.load = [0, 9, 9, 9]  # least-loaded would say cluster 0
        policy = ReadinessAwareSteering()
        decision = policy.choose(make_inflight(10), machine)
        assert decision.cluster == 1  # least pressure wins instead
        assert decision.cause is SteerCause.NO_PRODUCER

    def test_collocation_not_overridden(self):
        machine = PressureMachine([0, 0, 0, 0])
        add_producer(machine, 5, cluster=2, loc=0.9)
        policy = ReadinessAwareSteering()
        decision = policy.choose(make_inflight(10, deps=(5,), loc=0.9), machine)
        assert decision.cluster == 2  # producer cluster kept

    def test_stall_decisions_pass_through(self):
        machine = PressureMachine([0, 0, 0, 0])
        add_producer(machine, 5, cluster=2, loc=0.9)
        machine.free[2] = 0
        policy = ReadinessAwareSteering()
        decision = policy.choose(make_inflight(10, deps=(5,), loc=0.9), machine)
        assert decision.is_stall

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            ReadinessAwareSteering(horizon=-1)

    def test_name_tagged(self):
        assert ReadinessAwareSteering().name.endswith("+ready")
