"""Exhaustive per-opcode semantics tests for the interpreter ALU."""

import pytest

from repro.vm.assembler import assemble
from repro.vm.interpreter import run


def result_of(op_line, regs=None, memory=None):
    """Execute one op then store its result; return the stored value."""
    source = f"""
        {op_line}
        li r20, 100
        st r1, 0(r20)
        halt
    """
    trace = run(assemble(source), 100, initial_regs=regs, initial_memory=memory)
    # Re-execute to read memory via a fresh interpreter pass is overkill;
    # instead reconstruct from the store's address and a replay.
    from repro.vm.interpreter import MachineState, _execute

    state = MachineState()
    for reg, value in (regs or {}).items():
        state.write_reg(reg, value)
    for addr, value in (memory or {}).items():
        state.write_mem(addr, value)
    program = assemble(source)
    pc = 0
    while program[pc].opcode != "halt":
        pc, __, __a = _execute(program[pc], state, pc)
    return state.read_mem(100)


R = {2: 12, 3: 5, 4: -3}


@pytest.mark.parametrize(
    "line,expected",
    [
        ("add r1, r2, r3", 17),
        ("sub r1, r2, r3", 7),
        ("mul r1, r2, r3", 60),
        ("and r1, r2, r3", 12 & 5),
        ("or  r1, r2, r3", 12 | 5),
        ("xor r1, r2, r3", 12 ^ 5),
        ("sll r1, r2, r3", 12 << 5),
        ("srl r1, r2, r3", 12 >> 5),
        ("cmpeq r1, r2, r3", 0),
        ("cmpeq r1, r2, r2", 1),
        ("cmplt r1, r3, r2", 1),
        ("cmple r1, r2, r2", 1),
        ("addi r1, r2, 30", 42),
        ("subi r1, r2, 30", -18),
        ("muli r1, r2, -2", -24),
        ("andi r1, r2, 10", 8),
        ("ori  r1, r2, 3", 15),
        ("xori r1, r2, 6", 10),
        ("slli r1, r2, 2", 48),
        ("srli r1, r2, 2", 3),
        ("cmpeqi r1, r2, 12", 1),
        ("cmplti r1, r2, 12", 0),
        ("cmplei r1, r2, 12", 1),
        ("li r1, -7", -7),
        ("mov r1, r4", -3),
    ],
)
def test_alu_semantics(line, expected):
    assert result_of(line, regs=dict(R)) == expected


class TestBranchSemantics:
    def test_beq_not_taken_on_nonzero(self):
        trace = run(
            assemble("li r1, 5\nbeq r1, over\nhalt\nover: halt"), 100
        )
        assert not trace[1].taken

    def test_negative_values_branch(self):
        trace = run(
            assemble("li r1, -1\nbne r1, over\nhalt\nover: halt"), 100
        )
        assert trace[1].taken


class TestShiftMasking:
    def test_shift_amount_masked_to_63(self):
        # Shifting by 64 behaves as shifting by 0 (Alpha-style masking).
        assert result_of("slli r1, r2, 64", regs=dict(R)) == 12
