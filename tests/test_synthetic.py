"""Tests for the parameterized synthetic workload generator."""

import pytest

from repro.core.config import monolithic_machine
from repro.core.simulator import ClusteredSimulator
from repro.vm.isa import OpClass
from repro.workloads.synthetic import (
    SyntheticConfig,
    build_synthetic,
    ilp_sweep_configs,
)


def simulate(spec, n=4000):
    trace = spec.generate(n)
    sim = ClusteredSimulator(monolithic_machine(), max_cycles=500_000)
    return sim.run(trace)


class TestConfigValidation:
    def test_chain_bounds(self):
        with pytest.raises(ValueError):
            SyntheticConfig(chains=0)
        with pytest.raises(ValueError):
            SyntheticConfig(chains=9)

    def test_chain_op_checked(self):
        with pytest.raises(ValueError):
            SyntheticConfig(chain_op="div")

    def test_branch_bias_range(self):
        with pytest.raises(ValueError):
            SyntheticConfig(branch_bias=0.3)

    def test_name_encodes_shape(self):
        config = SyntheticConfig(chains=3, chain_op="mul", rib_ops=1,
                                 loads_per_iteration=2)
        assert config.name == "syn-3xmul-r1-l2"


class TestGeneratedKernels:
    def test_assembles_and_runs(self):
        spec = build_synthetic(SyntheticConfig())
        trace = spec.generate(2000)
        assert len(trace) == 2000

    def test_loads_present_when_requested(self):
        spec = build_synthetic(SyntheticConfig(loads_per_iteration=2))
        trace = spec.generate(2000)
        loads = sum(1 for t in trace if t.opclass is OpClass.LOAD)
        assert loads > 200

    def test_no_loads_when_zero(self):
        spec = build_synthetic(
            SyntheticConfig(loads_per_iteration=0, rib_ops=0)
        )
        trace = spec.generate(2000)
        assert all(not t.is_load for t in trace)

    def test_branch_bias_produces_stores_sometimes(self):
        spec = build_synthetic(
            SyntheticConfig(loads_per_iteration=1, branch_bias=0.7)
        )
        trace = spec.generate(4000)
        stores = sum(1 for t in trace if t.is_store)
        assert stores > 0

    def test_mul_chains_are_slower(self):
        add_spec = build_synthetic(
            SyntheticConfig(chains=2, chain_op="add", rib_ops=0,
                            loads_per_iteration=0)
        )
        mul_spec = build_synthetic(
            SyntheticConfig(chains=2, chain_op="mul", rib_ops=0,
                            loads_per_iteration=0)
        )
        assert simulate(add_spec).cpi < simulate(mul_spec).cpi


class TestIlpDial:
    def test_monolithic_ipc_grows_with_chains(self):
        ipcs = []
        for config in ilp_sweep_configs(chain_counts=(1, 4, 8)):
            ipcs.append(simulate(build_synthetic(config)).ipc)
        assert ipcs[0] < ipcs[1] < ipcs[2]

    def test_sweep_names_unique(self):
        names = [c.name for c in ilp_sweep_configs()]
        assert len(set(names)) == len(names)
