"""Tests for the idealized list scheduler (Section 2.2)."""

import pytest

from repro.core.config import clustered_machine, monolithic_machine
from repro.core.rename import extract_dependences
from repro.idealized.list_scheduler import ListScheduleResult, list_schedule
from repro.idealized.regions import split_regions
from repro.workloads.patterns import parallel_chains, serial_chain
from repro.workloads.suite import get_kernel
from repro.frontend.branch_predictor import (
    GshareBranchPredictor,
    annotate_mispredictions,
)


def schedule(trace, config, mispredicted=frozenset(), latencies=None, **kwargs):
    deps = extract_dependences(trace)
    if latencies is None:
        latencies = [t.base_latency for t in trace]
    return list_schedule(trace, deps, mispredicted, config, latencies, **kwargs)


class TestSplitRegions:
    def test_covers_whole_trace(self):
        trace = serial_chain(100)
        regions = split_regions(trace, {30, 60})
        assert regions[0] == (0, 31)
        assert regions[1] == (31, 61)
        assert regions[-1][1] == 100
        covered = sum(stop - start for start, stop in regions)
        assert covered == 100

    def test_max_length_cap(self):
        trace = serial_chain(100)
        regions = split_regions(trace, set(), max_length=32)
        assert all(stop - start <= 32 for start, stop in regions)

    def test_empty_mispredictions_single_region_when_short(self):
        trace = serial_chain(50)
        assert split_regions(trace, set(), max_length=256) == [(0, 50)]

    def test_invalid_max_length(self):
        with pytest.raises(ValueError):
            split_regions(serial_chain(5), set(), max_length=0)


class TestListScheduleBasics:
    def test_serial_chain_spans_its_length(self):
        n = 100
        result = schedule(serial_chain(n), monolithic_machine())
        # One add per cycle; fetch pipeline adds the dispatch depth.
        assert n <= result.total_cycles <= n + 40

    def test_parallel_chains_use_width(self):
        result = schedule(parallel_chains(8, 50), monolithic_machine())
        assert result.total_cycles <= 50 + 40

    def test_clustered_serial_chain_matches_monolithic(self):
        # The whole point of Section 2.2: an idealized schedule keeps the
        # chain on one cluster, so 8x1w matches 1x8w on serial code.
        mono = schedule(serial_chain(200), monolithic_machine())
        split = schedule(serial_chain(200), clustered_machine(8))
        assert split.total_cycles <= mono.total_cycles + 4

    def test_more_instructions_than_ports_serializes(self):
        # 16 independent chains on an 8-wide machine take ~2x the cycles.
        narrow = schedule(parallel_chains(16, 40), monolithic_machine())
        wide = schedule(parallel_chains(8, 40), monolithic_machine())
        assert narrow.total_cycles > wide.total_cycles + 20

    def test_cpi_property(self):
        result = ListScheduleResult(total_cycles=100, instructions=50, regions=2)
        assert result.cpi == 2.0


class TestPriorityModes:
    def make_kernel_inputs(self, n=3000):
        spec = get_kernel("vpr")
        trace = spec.generate(n)
        deps = extract_dependences(trace)
        mis = frozenset(annotate_mispredictions(trace, GshareBranchPredictor()))
        latencies = [t.base_latency + (2 if t.is_load else 0) for t in trace]
        return trace, deps, mis, latencies

    def test_oracle_beats_or_matches_binary(self):
        trace, deps, mis, lat = self.make_kernel_inputs()
        config = clustered_machine(8)
        oracle = list_schedule(trace, deps, mis, config, lat, "oracle")
        binary = list_schedule(
            trace, deps, mis, config, lat, "binary",
            binary_table={t.pc: False for t in trace},
        )
        assert oracle.total_cycles <= binary.total_cycles

    def test_loc_mode_requires_table(self):
        trace, deps, mis, lat = self.make_kernel_inputs(500)
        with pytest.raises(ValueError):
            list_schedule(trace, deps, mis, monolithic_machine(), lat, "loc")

    def test_unknown_mode_rejected(self):
        trace, deps, mis, lat = self.make_kernel_inputs(500)
        with pytest.raises(ValueError):
            list_schedule(trace, deps, mis, monolithic_machine(), lat, "magic")


class TestAgainstSimulator:
    def test_idealized_not_slower_than_simulated(self):
        # The idealized schedule is a lower bound (same constraints, global
        # knowledge), modulo region conservatism -- allow 15% slop.
        from repro.core.simulator import ClusteredSimulator

        spec = get_kernel("gzip")
        trace = spec.generate(4000)
        deps = extract_dependences(trace)
        mis = frozenset(annotate_mispredictions(trace, GshareBranchPredictor()))
        config = clustered_machine(4)
        sim = ClusteredSimulator(config, max_cycles=1_000_000).run(trace, deps, mis)
        latencies = [r.latency for r in sim.records]
        ideal = list_schedule(trace, deps, mis, config, latencies)
        assert ideal.total_cycles <= sim.cycles * 1.15
