"""The :class:`~repro.experiments.executor.Executor` protocol layer.

The refactor contract: execution backends are interchangeable behind one
protocol, ``LocalPoolExecutor`` is the old pool logic bit-for-bit, the
registry (:func:`make_executor`) validates names and endpoints up front,
and the moved ``parallel`` internals keep importing -- with a
:class:`DeprecationWarning` -- from their old home.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.serialize import results_identical
from repro.experiments import parallel
from repro.experiments.distributed import DistributedExecutor
from repro.experiments.executor import (
    EXECUTOR_NAMES,
    Executor,
    LocalPoolExecutor,
    executor_names,
    make_executor,
)
from repro.experiments.harness import Workbench
from repro.experiments.outcomes import ExecutionPolicy, OutcomeStats
from repro.experiments.parallel import execute_job
from repro.experiments.sweep import run_spec
from repro.specs import ExperimentSpec, MachineSpec, SpecError, SweepSpec, spec_hash
from repro.workloads.suite import get_kernel

INSTRUCTIONS = 400
KERNELS = ("gcc", "mcf")


def make_bench(**kwargs):
    kwargs.setdefault("instructions", INSTRUCTIONS)
    kwargs.setdefault("benchmarks", [get_kernel(k) for k in KERNELS])
    return Workbench(**kwargs)


def make_jobs(bench, policies=("l", "s")):
    return [
        bench.job(get_kernel(kernel), bench.clustered(2), policy)
        for kernel in KERNELS
        for policy in policies
    ]


class TestRegistry:
    def test_names(self):
        assert executor_names() == EXECUTOR_NAMES == ("local", "distributed")

    def test_make_local(self):
        executor = make_executor("local", workers=3)
        assert isinstance(executor, LocalPoolExecutor)
        assert executor.workers == 3
        assert executor.name == "local"

    def test_make_distributed_needs_endpoint(self):
        with pytest.raises(ValueError, match="workers endpoint"):
            make_executor("distributed")

    def test_make_distributed(self):
        executor = make_executor("distributed", endpoint="127.0.0.1:0")
        try:
            assert isinstance(executor, DistributedExecutor)
            assert executor.name == "distributed"
        finally:
            executor.close()

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("bogus")

    def test_protocol_is_runtime_checkable(self):
        assert isinstance(LocalPoolExecutor(), Executor)
        distributed = DistributedExecutor("127.0.0.1:0")
        try:
            assert isinstance(distributed, Executor)
        finally:
            distributed.close()


class TestLocalPoolExecutor:
    def test_outcomes_in_submission_order_and_bit_identical(self):
        bench = make_bench()
        jobs = make_jobs(bench)
        seen: list[tuple[str, int]] = []

        def on_outcome(outcome):
            seen.append((threading.get_ident(), 1))

        stats = OutcomeStats()
        executor = LocalPoolExecutor()
        outcomes = executor.execute(
            jobs,
            policy=ExecutionPolicy(),
            on_outcome=on_outcome,
            stats=stats,
        )
        assert [outcome.job for outcome in outcomes] == jobs
        assert all(outcome.ok for outcome in outcomes)
        assert stats.executed == len(jobs)
        # on_outcome fires on the calling thread, once per job.
        assert [tid for tid, _ in seen] == [threading.get_ident()] * len(jobs)
        for job, outcome in zip(jobs, outcomes):
            assert results_identical(execute_job(job), outcome.result)

    def test_workbench_resolves_and_caches_executor(self):
        bench = make_bench()
        executor = bench.resolve_executor()
        assert isinstance(executor, LocalPoolExecutor)
        assert bench.resolve_executor() is executor
        bench.close_executors()
        assert bench.resolve_executor() is not executor

    def test_workbench_accepts_executor_instance(self):
        sentinel = LocalPoolExecutor(workers=0)
        bench = make_bench(executor=sentinel)
        assert bench.resolve_executor() is sentinel

    def test_workbench_rejects_unknown_executor(self):
        with pytest.raises(ValueError, match="bogus"):
            make_bench(executor="bogus")


class TestDeprecationShim:
    @pytest.mark.parametrize("name", ["_PoolScheduler", "_JobState"])
    def test_moved_internals_warn_and_resolve(self, name):
        from repro.experiments import executor as executor_module

        parallel.__dict__.pop(name, None)  # the shim caches after one warn
        with pytest.warns(DeprecationWarning, match=name):
            moved = getattr(parallel, name)
        assert moved is getattr(executor_module, name)
        # The cached second lookup is warning-free.
        assert getattr(parallel, name) is moved

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            parallel._NeverExisted


class TestSpecExecutorField:
    def _spec(self, execution=None):
        return ExperimentSpec(
            name="executor-field",
            sweeps=(SweepSpec((MachineSpec(2),), ("l",)),),
            workloads=None,
            execution=execution,
        )

    def test_valid_names_accepted_and_surfaced(self):
        spec = self._spec(execution={"executor": "local"})
        assert spec.to_dict()["execution"]["executor"] == "local"

    def test_unknown_name_rejected_at_load(self):
        with pytest.raises(SpecError, match="executor"):
            self._spec(execution={"executor": "bogus"})

    def test_executor_key_is_hash_neutral(self):
        plain = self._spec()
        tagged = self._spec(execution={"executor": "distributed"})
        assert spec_hash(plain) == spec_hash(tagged)

    def test_run_spec_restores_bench_executor(self):
        sentinel = LocalPoolExecutor()
        bench = make_bench(executor=sentinel)
        spec = ExperimentSpec(
            name="restore",
            sweeps=(SweepSpec((MachineSpec(2),), ("l",)),),
            workloads=[{"kernel": "gcc"}],
            execution={"executor": "local"},
        )
        run_spec(bench, spec)
        assert bench.executor is sentinel
