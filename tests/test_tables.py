"""Unit tests for table/histogram rendering."""

import pytest

from repro.util.tables import format_histogram, format_stacked_rows, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "longer" in lines[3]
        # All rows align on the second column.
        assert lines[2].index("1") == lines[3].index("2")

    def test_floats_formatted(self):
        text = format_table(["x"], [[1.23456]])
        assert "1.235" in text

    def test_custom_float_format(self):
        text = format_table(["x"], [[1.23456]], float_format="{:.1f}")
        assert "1.2" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestFormatHistogram:
    def test_bars_scale_to_peak(self):
        text = format_histogram(["x", "y"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_zero_values(self):
        text = format_histogram(["x"], [0.0])
        assert "#" not in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_histogram(["x"], [1.0, 2.0])


class TestFormatStackedRows:
    def test_total_column(self):
        text = format_stacked_rows(
            ["cfg1"], {"a": [1.0], "b": [2.0]}
        )
        assert "3.000" in text
