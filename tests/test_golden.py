"""Golden regression snapshots for every reproduced figure.

Fresh small-trace runs are compared cell-by-cell against the committed
tables under ``tests/golden/``, so performance work (parallel fan-out,
caching, simulator optimizations) can't silently change results.  When a
change legitimately alters simulation output, regenerate with
``PYTHONPATH=src python tests/golden/regen.py`` and bump
``CACHE_SCHEMA_VERSION`` in the same commit.
"""

import json
import math
import pathlib

import pytest

from repro.experiments import EXPERIMENTS

from .golden.regen import FIGURES, GOLDEN_DIR, build_bench

# Pure-python arithmetic is deterministic; the tolerance only absorbs
# float repr round-tripping through JSON (which is itself exact in
# CPython, so equality is effectively bitwise).
REL_TOL = 1e-12


@pytest.fixture(scope="module")
def bench():
    return build_bench()


def _cells_match(expected, actual) -> bool:
    if isinstance(expected, float) and math.isnan(expected):
        return isinstance(actual, float) and math.isnan(actual)
    if isinstance(expected, (int, float)) and not isinstance(expected, bool):
        return (
            isinstance(actual, (int, float))
            and actual == pytest.approx(expected, rel=REL_TOL, abs=REL_TOL)
        )
    return expected == actual


@pytest.mark.parametrize("name", FIGURES)
def test_figure_matches_golden_snapshot(name, bench):
    golden_path = pathlib.Path(GOLDEN_DIR) / f"{name}.json"
    golden = json.loads(golden_path.read_text())
    figure = EXPERIMENTS[name](bench)
    fresh = figure.to_dict()

    assert fresh["figure_id"] == golden["figure_id"]
    assert fresh["headers"] == golden["headers"]
    assert len(fresh["rows"]) == len(golden["rows"]), (
        f"{name}: row count changed {len(golden['rows'])} -> {len(fresh['rows'])}"
    )
    for row_index, (want, got) in enumerate(zip(golden["rows"], fresh["rows"])):
        for col, (expected, actual) in enumerate(zip(want, got)):
            assert _cells_match(expected, actual), (
                f"{name} row {row_index} ({want[0]}) column "
                f"{golden['headers'][col]!r}: expected {expected!r}, "
                f"got {actual!r} -- if this change is intentional, "
                "regenerate tests/golden/ and bump CACHE_SCHEMA_VERSION"
            )


def test_golden_files_exist():
    for name in FIGURES:
        assert (pathlib.Path(GOLDEN_DIR) / f"{name}.json").exists()
